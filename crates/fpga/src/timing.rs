//! Static timing analysis over the placed design.
//!
//! The delay model mirrors the cost structure of a post-P&R FPGA timing
//! report: IOB delays at the boundary, a fixed LUT logic delay, and net
//! delays growing with driver fanout and placed wire length. The paper's
//! Table V "Time (ns)" column is the critical combinational path of each
//! multiplier through exactly these components.
//!
//! [`analyze_sta`] runs the full subsystem: a forward arrival pass, a
//! backward required-time pass (per-LUT and per-endpoint slack), a slack
//! histogram, and top-K critical path enumeration with per-segment
//! IBUF/net/LUT/OBUF decomposition — all in a typed [`StaReport`].
//! [`analyze`] is the same analysis under default [`StaOptions`], where
//! the required time is the critical delay itself, so every slack is
//! ≥ 0 and the critical endpoints sit at exactly 0.
//!
//! Slack semantics: with [`StaOptions::target_ns`] unset, the required
//! time at every primary output is the worst endpoint arrival, making
//! slack a measure of *margin against the critical path*. Setting a
//! target turns the analysis into a constraint check — slacks go
//! negative when the design misses it, which is what the `sta` bin's
//! nonzero exit gates on.

use std::fmt;

use crate::device::Device;
use crate::lut::{LutAnalysis, LutNetlist, Signal};
use crate::pack::Packing;
use crate::place::Placement;

/// Options for [`analyze_sta`].
#[derive(Debug, Clone)]
pub struct StaOptions {
    /// Required arrival time at every primary output, in ns. `None`
    /// uses the design's own critical delay (all slacks ≥ 0, critical
    /// endpoints at exactly 0).
    pub target_ns: Option<f64>,
    /// How many critical paths to enumerate (worst endpoints first).
    pub max_paths: usize,
    /// Two endpoints within this margin of the critical delay count as
    /// tied for critical.
    pub epsilon_ns: f64,
}

impl Default for StaOptions {
    fn default() -> Self {
        StaOptions {
            target_ns: None,
            max_paths: 4,
            epsilon_ns: 1e-9,
        }
    }
}

/// One element along a traced critical path.
#[derive(Debug, Clone, PartialEq)]
pub enum PathElement {
    /// The input buffer of the named primary input.
    Ibuf(String),
    /// A routed net: driver fanout and placed Manhattan length.
    Net {
        /// Fanout of the driving signal.
        fanout: usize,
        /// Manhattan distance between the placed endpoints.
        length: f64,
    },
    /// The logic delay of LUT `.0`.
    Lut(u32),
    /// The output buffer of the named primary output.
    Obuf(String),
}

impl fmt::Display for PathElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathElement::Ibuf(name) => write!(f, "IBUF {name}"),
            PathElement::Net { fanout, length } => {
                write!(f, "net (fanout {fanout}, length {length:.1})")
            }
            PathElement::Lut(id) => write!(f, "LUT {id}"),
            PathElement::Obuf(name) => write!(f, "OBUF {name}"),
        }
    }
}

/// One delay increment along a traced path: the element, its delay
/// contribution, and the cumulative arrival after it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// What contributes the delay.
    pub element: PathElement,
    /// This element's delay, in ns.
    pub delay_ns: f64,
    /// Cumulative arrival after this element, in ns.
    pub at_ns: f64,
}

/// A fully decomposed input-pad → LUT-chain → output-pad path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Index of the terminating primary output.
    pub output_index: usize,
    /// Name of the terminating primary output.
    pub output: String,
    /// Arrival time at the output pad, in ns.
    pub arrival_ns: f64,
    /// Slack of this endpoint against the required time, in ns.
    pub slack_ns: f64,
    /// The segments, source first; their `delay_ns` sum to
    /// `arrival_ns`.
    pub segments: Vec<PathSegment>,
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "path to {} : arrival {:.4} ns, slack {:+.4} ns",
            self.output, self.arrival_ns, self.slack_ns
        )?;
        for seg in &self.segments {
            writeln!(
                f,
                "  +{:>8.4} ns  = {:>9.4} ns  {}",
                seg.delay_ns, seg.at_ns, seg.element
            )?;
        }
        Ok(())
    }
}

/// A fixed-width histogram over every slack in the design (per-LUT and
/// per-endpoint).
#[derive(Debug, Clone, PartialEq)]
pub struct SlackHistogram {
    /// Lower edge of the first bin, in ns (the worst slack).
    pub min_ns: f64,
    /// Width of each bin, in ns.
    pub bin_width_ns: f64,
    /// Number of slacks falling into each bin, ascending.
    pub counts: Vec<usize>,
}

impl SlackHistogram {
    const BINS: usize = 8;

    fn of(slacks: &[f64]) -> SlackHistogram {
        if slacks.is_empty() {
            return SlackHistogram {
                min_ns: 0.0,
                bin_width_ns: 0.0,
                counts: Vec::new(),
            };
        }
        let min = slacks.iter().copied().fold(f64::INFINITY, f64::min);
        let max = slacks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = (max - min) / Self::BINS as f64;
        if width <= 0.0 {
            return SlackHistogram {
                min_ns: min,
                bin_width_ns: 0.0,
                counts: vec![slacks.len()],
            };
        }
        let mut counts = vec![0usize; Self::BINS];
        for &s in slacks {
            let bin = (((s - min) / width) as usize).min(Self::BINS - 1);
            counts[bin] += 1;
        }
        SlackHistogram {
            min_ns: min,
            bin_width_ns: width,
            counts,
        }
    }

    /// Total number of slacks binned.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

impl fmt::Display for SlackHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(no slacks)");
        }
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = self.min_ns + self.bin_width_ns * i as f64;
            let hi = lo + self.bin_width_ns;
            let bar = "#".repeat(count * 40 / peak);
            writeln!(f, "  [{lo:>8.3}, {hi:>8.3}) {count:>5} {bar}")?;
        }
        Ok(())
    }
}

/// The result of static timing analysis.
///
/// Kept under its historical [`TimingReport`] alias everywhere the flow
/// only needs the critical number; the slack/path machinery rides in
/// the same struct.
#[derive(Debug, Clone)]
pub struct StaReport {
    /// Critical-path delay in nanoseconds (worst endpoint arrival).
    pub critical_ns: f64,
    /// Name of the output terminating the critical path (the first of
    /// [`StaReport::critical_outputs`]).
    pub critical_output: String,
    /// *All* outputs whose arrival is within `epsilon_ns` of the
    /// critical delay, in output-declaration order — ties are reported,
    /// not dropped.
    pub critical_outputs: Vec<String>,
    /// Arrival time of every LUT output, in ns.
    pub arrival_ns: Vec<f64>,
    /// Required time at every LUT output, in ns (LUTs reaching no
    /// endpoint are pinned to the target).
    pub required_ns: Vec<f64>,
    /// Per-LUT slack (`required − arrival`), in ns.
    pub slack_ns: Vec<f64>,
    /// Arrival time at every primary output pad, in ns.
    pub output_arrival_ns: Vec<f64>,
    /// Per-endpoint slack (`target − arrival`), in ns.
    pub output_slack_ns: Vec<f64>,
    /// The resolved required time at the outputs, in ns.
    pub target_ns: f64,
    /// The worst slack anywhere in the design, in ns (0 when the
    /// default target is used, negative iff an explicit target is
    /// missed).
    pub worst_slack_ns: f64,
    /// Histogram over every per-LUT and per-endpoint slack.
    pub histogram: SlackHistogram,
    /// The top-K critical paths, worst endpoint first.
    pub paths: Vec<CriticalPath>,
}

/// Historical name of [`StaReport`].
pub type TimingReport = StaReport;

/// Runs STA on a placed design under default [`StaOptions`].
pub fn analyze(
    lutnet: &LutNetlist,
    packing: &Packing,
    placement: &Placement,
    device: &Device,
) -> StaReport {
    analyze_sta(lutnet, packing, placement, device, &StaOptions::default())
}

/// Runs full STA — forward arrivals, backward required times, slack,
/// histogram, and critical path enumeration — on a placed design.
pub fn analyze_sta(
    lutnet: &LutNetlist,
    packing: &Packing,
    placement: &Placement,
    device: &Device,
    options: &StaOptions,
) -> StaReport {
    let analysis = LutAnalysis::of(lutnet);
    let fanouts = &analysis.lut_fanouts;
    let input_fanouts = &analysis.input_fanouts;
    let lut_pos = |l: u32| placement.slice_pos(packing.slice_of(l));

    // Forward pass: arrival at every LUT output, then at every pad.
    let mut arrival = vec![0.0f64; lutnet.num_luts()];
    for (l, lut) in lutnet.luts().iter().enumerate() {
        let sink_pos = lut_pos(l as u32);
        let mut worst: f64 = 0.0;
        for s in &lut.inputs {
            let t = match s {
                Signal::Const(_) => 0.0,
                Signal::Input(i) => {
                    let src = placement.input_pos(*i);
                    device.t_ibuf_ns + net_delay(device, input_fanouts[*i as usize], src, sink_pos)
                }
                Signal::Lut(j) => {
                    arrival[*j as usize]
                        + net_delay(device, fanouts[*j as usize], lut_pos(*j), sink_pos)
                }
            };
            worst = worst.max(t);
        }
        arrival[l] = worst + device.t_lut_ns;
    }

    let mut critical_ns: f64 = 0.0;
    let mut critical_output = String::new();
    let mut output_arrival = Vec::with_capacity(lutnet.outputs().len());
    for (o, (name, s)) in lutnet.outputs().iter().enumerate() {
        let pad = placement.output_pos(o);
        let t = match s {
            Signal::Const(_) => device.t_obuf_ns,
            Signal::Input(i) => {
                device.t_ibuf_ns
                    + net_delay(
                        device,
                        input_fanouts[*i as usize],
                        placement.input_pos(*i),
                        pad,
                    )
                    + device.t_obuf_ns
            }
            Signal::Lut(j) => {
                arrival[*j as usize]
                    + net_delay(device, fanouts[*j as usize], lut_pos(*j), pad)
                    + device.t_obuf_ns
            }
        };
        output_arrival.push(t);
        if t > critical_ns {
            critical_ns = t;
            critical_output = name.clone();
        }
    }

    // All endpoints tied for critical, in declaration order.
    let critical_outputs: Vec<String> = lutnet
        .outputs()
        .iter()
        .zip(&output_arrival)
        .filter(|(_, &t)| t >= critical_ns - options.epsilon_ns)
        .map(|((name, _), _)| name.clone())
        .collect();

    // Backward pass: required time at every LUT output. Endpoints seed
    // the recursion at `target − t_obuf − net`; interior LUTs take the
    // min over their consumers. LUTs reaching no endpoint at all stay
    // at +∞ and are pinned to the target (their slack is then simply
    // the margin of their own arrival).
    let target_ns = options.target_ns.unwrap_or(critical_ns);
    let mut required = vec![f64::INFINITY; lutnet.num_luts()];
    for (o, (_, s)) in lutnet.outputs().iter().enumerate() {
        if let Signal::Lut(j) = s {
            let pad = placement.output_pos(o);
            let req = target_ns
                - device.t_obuf_ns
                - net_delay(device, fanouts[*j as usize], lut_pos(*j), pad);
            let slot = &mut required[*j as usize];
            *slot = slot.min(req);
        }
    }
    for (l, lut) in lutnet.luts().iter().enumerate().rev() {
        let req_l = required[l];
        if req_l == f64::INFINITY {
            continue;
        }
        let sink_pos = lut_pos(l as u32);
        for s in &lut.inputs {
            if let Signal::Lut(j) = s {
                let req = req_l
                    - device.t_lut_ns
                    - net_delay(device, fanouts[*j as usize], lut_pos(*j), sink_pos);
                let slot = &mut required[*j as usize];
                *slot = slot.min(req);
            }
        }
    }
    for r in &mut required {
        if *r == f64::INFINITY {
            *r = target_ns;
        }
    }

    let slack: Vec<f64> = required.iter().zip(&arrival).map(|(r, a)| r - a).collect();
    let output_slack: Vec<f64> = output_arrival.iter().map(|a| target_ns - a).collect();
    let worst_slack_ns = slack
        .iter()
        .chain(&output_slack)
        .copied()
        .fold(f64::INFINITY, f64::min);
    let worst_slack_ns = if worst_slack_ns == f64::INFINITY {
        0.0
    } else {
        worst_slack_ns
    };

    let all_slacks: Vec<f64> = slack.iter().chain(&output_slack).copied().collect();
    let histogram = SlackHistogram::of(&all_slacks);

    // Top-K paths: worst endpoints first, declaration order on ties.
    let mut order: Vec<usize> = (0..output_arrival.len()).collect();
    order.sort_by(|&a, &b| {
        output_arrival[b]
            .partial_cmp(&output_arrival[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let paths: Vec<CriticalPath> = order
        .iter()
        .take(options.max_paths)
        .map(|&o| {
            trace_path(
                lutnet,
                packing,
                placement,
                device,
                &analysis,
                &arrival,
                o,
                output_arrival[o],
                target_ns,
            )
        })
        .collect();

    StaReport {
        critical_ns,
        critical_output,
        critical_outputs,
        arrival_ns: arrival,
        required_ns: required,
        slack_ns: slack,
        output_arrival_ns: output_arrival,
        output_slack_ns: output_slack,
        target_ns,
        worst_slack_ns,
        histogram,
        paths,
    }
}

/// Backtracks the worst path into output `o`, reconstructing the same
/// argmax decisions the forward pass took (first max wins, matching
/// `f64::max`'s left bias under strict improvement).
#[allow(clippy::too_many_arguments)]
fn trace_path(
    lutnet: &LutNetlist,
    packing: &Packing,
    placement: &Placement,
    device: &Device,
    analysis: &LutAnalysis,
    arrival: &[f64],
    o: usize,
    arrival_ns: f64,
    target_ns: f64,
) -> CriticalPath {
    let lut_pos = |l: u32| placement.slice_pos(packing.slice_of(l));
    let (name, source) = &lutnet.outputs()[o];
    let pad = placement.output_pos(o);

    // Collect the chain from the endpoint back to its source, then
    // reverse into pad→pad order.
    let mut rev: Vec<(PathElement, f64)> =
        vec![(PathElement::Obuf(name.clone()), device.t_obuf_ns)];
    let mut cursor = *source;
    let mut sink = pad;
    loop {
        match cursor {
            Signal::Const(_) => break,
            Signal::Input(i) => {
                let src = placement.input_pos(i);
                let fanout = analysis.input_fanouts[i as usize];
                rev.push((
                    PathElement::Net {
                        fanout,
                        length: manhattan(src, sink),
                    },
                    net_delay(device, fanout, src, sink),
                ));
                rev.push((
                    PathElement::Ibuf(lutnet.input_names()[i as usize].clone()),
                    device.t_ibuf_ns,
                ));
                break;
            }
            Signal::Lut(j) => {
                let src = lut_pos(j);
                let fanout = analysis.lut_fanouts[j as usize];
                rev.push((
                    PathElement::Net {
                        fanout,
                        length: manhattan(src, sink),
                    },
                    net_delay(device, fanout, src, sink),
                ));
                rev.push((PathElement::Lut(j), device.t_lut_ns));
                // Which input dominated this LUT's arrival? Replay the
                // forward pass's max (first maximum wins, like the
                // forward pass's strict-improvement update).
                let mut best: Option<(Signal, f64)> = None;
                for s in &lutnet.luts()[j as usize].inputs {
                    let t = match s {
                        Signal::Const(_) => 0.0,
                        Signal::Input(i) => {
                            device.t_ibuf_ns
                                + net_delay(
                                    device,
                                    analysis.input_fanouts[*i as usize],
                                    placement.input_pos(*i),
                                    src,
                                )
                        }
                        Signal::Lut(k) => {
                            arrival[*k as usize]
                                + net_delay(
                                    device,
                                    analysis.lut_fanouts[*k as usize],
                                    lut_pos(*k),
                                    src,
                                )
                        }
                    };
                    if best.as_ref().is_none_or(|&(_, bt)| t > bt) {
                        best = Some((*s, t));
                    }
                }
                match best {
                    Some((s, _)) => {
                        cursor = s;
                        sink = src;
                    }
                    None => break, // LUT with no inputs: constant driver
                }
            }
        }
    }

    let mut segments = Vec::with_capacity(rev.len());
    let mut at = 0.0f64;
    for (element, delay_ns) in rev.into_iter().rev() {
        at += delay_ns;
        segments.push(PathSegment {
            element,
            delay_ns,
            at_ns: at,
        });
    }
    CriticalPath {
        output_index: o,
        output: name.clone(),
        arrival_ns,
        slack_ns: target_ns - arrival_ns,
        segments,
    }
}

fn manhattan(src: (f32, f32), dst: (f32, f32)) -> f64 {
    ((src.0 - dst.0).abs() + (src.1 - dst.1).abs()) as f64
}

fn net_delay(device: &Device, fanout: usize, src: (f32, f32), dst: (f32, f32)) -> f64 {
    device.t_net_ns
        + device.t_net_per_fanout_ns * fanout.saturating_sub(1) as f64
        + device.t_net_per_unit_ns * manhattan(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;
    use crate::pack::pack_slices;
    use crate::place::{place, PlaceOptions};

    fn timed(net: &LutNetlist) -> TimingReport {
        let packing = pack_slices(net, 4);
        let placement = place(net, &packing, &PlaceOptions::default());
        analyze(net, &packing, &placement, &Device::artix7())
    }

    fn timed_with(net: &LutNetlist, options: &StaOptions) -> StaReport {
        let packing = pack_slices(net, 4);
        let placement = place(net, &packing, &PlaceOptions::default());
        analyze_sta(net, &packing, &placement, &Device::artix7(), options)
    }

    #[test]
    fn single_lut_path_has_all_components() {
        let mut net = LutNetlist::new("t".into(), 6, vec!["a".into(), "b".into()]);
        let id = net.push_lut(Lut {
            inputs: vec![Signal::Input(0), Signal::Input(1)],
            truth: crate::lut::Truth::of(0b0110),
        });
        net.push_output("y".into(), Signal::Lut(id));
        let d = Device::artix7();
        let r = timed(&net);
        // At least IBUF + net + LUT + net + OBUF.
        let floor = d.t_ibuf_ns + d.t_net_ns + d.t_lut_ns + d.t_net_ns + d.t_obuf_ns;
        assert!(r.critical_ns >= floor, "{} < {floor}", r.critical_ns);
        assert_eq!(r.critical_output, "y");
    }

    #[test]
    fn deeper_chain_is_slower() {
        let build = |depth: usize| {
            let mut net = LutNetlist::new("c".into(), 6, vec!["a".into()]);
            let mut prev = Signal::Input(0);
            for _ in 0..depth {
                let id = net.push_lut(Lut {
                    inputs: vec![prev],
                    truth: crate::lut::Truth::of(0b01),
                });
                prev = Signal::Lut(id);
            }
            net.push_output("y".into(), prev);
            net
        };
        let short = timed(&build(2)).critical_ns;
        let long = timed(&build(8)).critical_ns;
        assert!(long > short, "{long} <= {short}");
    }

    #[test]
    fn high_fanout_penalizes_delay() {
        let build = |fanout: usize| {
            let mut net = LutNetlist::new("f".into(), 6, vec!["a".into()]);
            let driver = net.push_lut(Lut {
                inputs: vec![Signal::Input(0)],
                truth: crate::lut::Truth::of(0b01),
            });
            let mut last = driver;
            for _ in 0..fanout {
                last = net.push_lut(Lut {
                    inputs: vec![Signal::Lut(driver)],
                    truth: crate::lut::Truth::of(0b01),
                });
            }
            net.push_output("y".into(), Signal::Lut(last));
            net
        };
        let lo = timed(&build(1)).critical_ns;
        let hi = timed(&build(12)).critical_ns;
        assert!(hi > lo, "{hi} <= {lo}");
    }

    #[test]
    fn passthrough_output_is_fast_but_nonzero() {
        let mut net = LutNetlist::new("p".into(), 6, vec!["a".into()]);
        net.push_output("y".into(), Signal::Input(0));
        let r = timed(&net);
        let d = Device::artix7();
        assert!(r.critical_ns >= d.t_ibuf_ns + d.t_obuf_ns);
    }

    #[test]
    fn arrival_times_are_monotone_along_chains() {
        let mut net = LutNetlist::new("m".into(), 6, vec!["a".into()]);
        let l0 = net.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: crate::lut::Truth::of(0b01),
        });
        let l1 = net.push_lut(Lut {
            inputs: vec![Signal::Lut(l0)],
            truth: crate::lut::Truth::of(0b01),
        });
        net.push_output("y".into(), Signal::Lut(l1));
        let r = timed(&net);
        assert!(r.arrival_ns[l1 as usize] > r.arrival_ns[l0 as usize]);
    }

    fn diamond_net() -> LutNetlist {
        // a → l0 → {l1 fast, l2+l3 slow} → l4 → y, plus a side output.
        let mut net = LutNetlist::new("d".into(), 6, vec!["a".into(), "b".into()]);
        let inv = crate::lut::Truth::of(0b01);
        let l0 = net.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: inv,
        });
        let l1 = net.push_lut(Lut {
            inputs: vec![Signal::Lut(l0)],
            truth: inv,
        });
        let l2 = net.push_lut(Lut {
            inputs: vec![Signal::Lut(l0)],
            truth: inv,
        });
        let l3 = net.push_lut(Lut {
            inputs: vec![Signal::Lut(l2)],
            truth: inv,
        });
        let l4 = net.push_lut(Lut {
            inputs: vec![Signal::Lut(l1), Signal::Lut(l3)],
            truth: crate::lut::Truth::of(0b0110),
        });
        net.push_output("y".into(), Signal::Lut(l4));
        net.push_output("side".into(), Signal::Lut(l1));
        net
    }

    #[test]
    fn default_target_makes_all_slacks_nonnegative_and_critical_zero() {
        let r = timed(&diamond_net());
        for (l, &s) in r.slack_ns.iter().enumerate() {
            assert!(s >= -1e-9, "LUT {l} slack {s}");
        }
        for (o, &s) in r.output_slack_ns.iter().enumerate() {
            assert!(s >= -1e-9, "output {o} slack {s}");
        }
        // The critical endpoint's slack is exactly 0 (target − target).
        let worst = r
            .output_slack_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(worst, 0.0);
        assert!(r.worst_slack_ns.abs() < 1e-9, "{}", r.worst_slack_ns);
        assert_eq!(r.target_ns, r.critical_ns);
    }

    #[test]
    fn required_and_arrival_agree_on_the_critical_path() {
        let r = timed(&diamond_net());
        // Along the critical path, every LUT's slack is ≈ 0; off-path
        // LUTs (the fast branch) have strictly positive slack.
        let min_lut_slack = r.slack_ns.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min_lut_slack.abs() < 1e-9, "{min_lut_slack}");
        assert!(
            r.slack_ns.iter().any(|&s| s > 0.01),
            "expected an off-path LUT with real margin, got {:?}",
            r.slack_ns
        );
    }

    #[test]
    fn explicit_target_produces_negative_slack() {
        let net = diamond_net();
        let tight = timed_with(
            &net,
            &StaOptions {
                target_ns: Some(0.5),
                ..StaOptions::default()
            },
        );
        assert!(tight.worst_slack_ns < 0.0, "{}", tight.worst_slack_ns);
        let loose = timed_with(
            &net,
            &StaOptions {
                target_ns: Some(1e3),
                ..StaOptions::default()
            },
        );
        assert!(loose.worst_slack_ns > 0.0, "{}", loose.worst_slack_ns);
    }

    #[test]
    fn critical_path_trace_decomposes_the_critical_delay() {
        let r = timed(&diamond_net());
        assert!(!r.paths.is_empty());
        let path = &r.paths[0];
        assert_eq!(path.output, r.critical_output);
        assert!((path.arrival_ns - r.critical_ns).abs() < 1e-9);
        // Segments sum to the endpoint arrival...
        let sum: f64 = path.segments.iter().map(|s| s.delay_ns).sum();
        assert!((sum - path.arrival_ns).abs() < 1e-9, "{sum}");
        // ...start at the input pad, end at the output pad, and pass
        // through the slow branch (l0, l2, l3, l4 = 4 LUTs).
        assert!(matches!(path.segments[0].element, PathElement::Ibuf(_)));
        assert!(matches!(
            path.segments.last().unwrap().element,
            PathElement::Obuf(_)
        ));
        let luts: Vec<u32> = path
            .segments
            .iter()
            .filter_map(|s| match s.element {
                PathElement::Lut(id) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(luts, vec![0, 2, 3, 4]);
        // Cumulative times are monotone.
        for w in path.segments.windows(2) {
            assert!(w[1].at_ns >= w[0].at_ns);
        }
        // Display renders the full trace.
        let text = path.to_string();
        assert!(text.contains("IBUF a"), "{text}");
        assert!(text.contains("OBUF y"), "{text}");
        assert!(text.contains("LUT 3"), "{text}");
    }

    #[test]
    fn paths_are_ordered_worst_first_and_capped() {
        let net = diamond_net();
        let r = timed_with(
            &net,
            &StaOptions {
                max_paths: 1,
                ..StaOptions::default()
            },
        );
        assert_eq!(r.paths.len(), 1);
        let r = timed_with(
            &net,
            &StaOptions {
                max_paths: 10,
                ..StaOptions::default()
            },
        );
        assert_eq!(r.paths.len(), 2); // only two endpoints exist
        assert!(r.paths[0].arrival_ns >= r.paths[1].arrival_ns);
        assert_eq!(r.paths[0].output, "y");
        assert_eq!(r.paths[1].output, "side");
    }

    #[test]
    fn tied_critical_outputs_are_all_reported() {
        // Two identical single-LUT cones; with a generous epsilon both
        // outputs count as critical, in declaration order.
        let mut net = LutNetlist::new("tie".into(), 6, vec!["a".into()]);
        let l0 = net.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: crate::lut::Truth::of(0b01),
        });
        net.push_output("y0".into(), Signal::Lut(l0));
        net.push_output("y1".into(), Signal::Lut(l0));
        let r = timed_with(
            &net,
            &StaOptions {
                epsilon_ns: 10.0, // pad placement differs; swallow it
                ..StaOptions::default()
            },
        );
        assert_eq!(r.critical_outputs, vec!["y0".to_string(), "y1".into()]);
        // The compatibility field is the first critical output by the
        // historical strict-max rule.
        assert!(r.critical_outputs.contains(&r.critical_output));
    }

    #[test]
    fn histogram_covers_every_slack() {
        let r = timed(&diamond_net());
        let expected = r.slack_ns.len() + r.output_slack_ns.len();
        assert_eq!(r.histogram.total(), expected);
        assert!(r.histogram.min_ns <= 1e-9);
        let text = r.histogram.to_string();
        assert!(text.contains('#'), "{text}");
    }

    #[test]
    fn dead_lut_required_time_is_pinned_to_target() {
        let mut net = LutNetlist::new("dead".into(), 6, vec!["a".into()]);
        let l0 = net.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: crate::lut::Truth::of(0b01),
        });
        let _dead = net.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: crate::lut::Truth::of(0b01),
        });
        net.push_output("y".into(), Signal::Lut(l0));
        let r = timed(&net);
        assert_eq!(r.required_ns[1], r.target_ns);
        assert!(r.slack_ns[1] >= 0.0);
    }
}
