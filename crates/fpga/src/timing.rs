//! Static timing analysis over the placed design.
//!
//! The delay model mirrors the cost structure of a post-P&R FPGA timing
//! report: IOB delays at the boundary, a fixed LUT logic delay, and net
//! delays growing with driver fanout and placed wire length. The paper's
//! Table V "Time (ns)" column is the critical combinational path of each
//! multiplier through exactly these components.

use crate::device::Device;
use crate::lut::{LutNetlist, Signal};
use crate::pack::Packing;
use crate::place::Placement;

/// The result of static timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Critical-path delay in nanoseconds.
    pub critical_ns: f64,
    /// Name of the output terminating the critical path.
    pub critical_output: String,
    /// Arrival time of every LUT output, in ns.
    pub arrival_ns: Vec<f64>,
}

/// Runs STA on a placed design.
pub fn analyze(
    lutnet: &LutNetlist,
    packing: &Packing,
    placement: &Placement,
    device: &Device,
) -> TimingReport {
    let fanouts = lutnet.lut_fanouts();
    let input_fanouts = input_fanout_counts(lutnet);
    let mut arrival = vec![0.0f64; lutnet.num_luts()];
    let lut_pos = |l: u32| placement.slice_pos(packing.slice_of(l));
    for (l, lut) in lutnet.luts().iter().enumerate() {
        let sink_pos = lut_pos(l as u32);
        let mut worst: f64 = 0.0;
        for s in &lut.inputs {
            let t = match s {
                Signal::Const(_) => 0.0,
                Signal::Input(i) => {
                    let src = placement.input_pos(*i);
                    device.t_ibuf_ns + net_delay(device, input_fanouts[*i as usize], src, sink_pos)
                }
                Signal::Lut(j) => {
                    arrival[*j as usize]
                        + net_delay(device, fanouts[*j as usize], lut_pos(*j), sink_pos)
                }
            };
            worst = worst.max(t);
        }
        arrival[l] = worst + device.t_lut_ns;
    }
    let mut critical_ns: f64 = 0.0;
    let mut critical_output = String::new();
    for (o, (name, s)) in lutnet.outputs().iter().enumerate() {
        let pad = placement.output_pos(o);
        let t = match s {
            Signal::Const(_) => device.t_obuf_ns,
            Signal::Input(i) => {
                device.t_ibuf_ns
                    + net_delay(
                        device,
                        input_fanouts[*i as usize],
                        placement.input_pos(*i),
                        pad,
                    )
                    + device.t_obuf_ns
            }
            Signal::Lut(j) => {
                arrival[*j as usize]
                    + net_delay(device, fanouts[*j as usize], lut_pos(*j), pad)
                    + device.t_obuf_ns
            }
        };
        if t > critical_ns {
            critical_ns = t;
            critical_output = name.clone();
        }
    }
    TimingReport {
        critical_ns,
        critical_output,
        arrival_ns: arrival,
    }
}

fn net_delay(device: &Device, fanout: usize, src: (f32, f32), dst: (f32, f32)) -> f64 {
    let dist = ((src.0 - dst.0).abs() + (src.1 - dst.1).abs()) as f64;
    device.t_net_ns
        + device.t_net_per_fanout_ns * fanout.saturating_sub(1) as f64
        + device.t_net_per_unit_ns * dist
}

fn input_fanout_counts(lutnet: &LutNetlist) -> Vec<usize> {
    let mut f = vec![0usize; lutnet.input_names().len()];
    for lut in lutnet.luts() {
        for s in &lut.inputs {
            if let Signal::Input(i) = s {
                f[*i as usize] += 1;
            }
        }
    }
    for (_, s) in lutnet.outputs() {
        if let Signal::Input(i) = s {
            f[*i as usize] += 1;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;
    use crate::pack::pack_slices;
    use crate::place::{place, PlaceOptions};

    fn timed(net: &LutNetlist) -> TimingReport {
        let packing = pack_slices(net, 4);
        let placement = place(net, &packing, &PlaceOptions::default());
        analyze(net, &packing, &placement, &Device::artix7())
    }

    #[test]
    fn single_lut_path_has_all_components() {
        let mut net = LutNetlist::new("t".into(), 6, vec!["a".into(), "b".into()]);
        let id = net.push_lut(Lut {
            inputs: vec![Signal::Input(0), Signal::Input(1)],
            truth: crate::lut::Truth::of(0b0110),
        });
        net.push_output("y".into(), Signal::Lut(id));
        let d = Device::artix7();
        let r = timed(&net);
        // At least IBUF + net + LUT + net + OBUF.
        let floor = d.t_ibuf_ns + d.t_net_ns + d.t_lut_ns + d.t_net_ns + d.t_obuf_ns;
        assert!(r.critical_ns >= floor, "{} < {floor}", r.critical_ns);
        assert_eq!(r.critical_output, "y");
    }

    #[test]
    fn deeper_chain_is_slower() {
        let build = |depth: usize| {
            let mut net = LutNetlist::new("c".into(), 6, vec!["a".into()]);
            let mut prev = Signal::Input(0);
            for _ in 0..depth {
                let id = net.push_lut(Lut {
                    inputs: vec![prev],
                    truth: crate::lut::Truth::of(0b01),
                });
                prev = Signal::Lut(id);
            }
            net.push_output("y".into(), prev);
            net
        };
        let short = timed(&build(2)).critical_ns;
        let long = timed(&build(8)).critical_ns;
        assert!(long > short, "{long} <= {short}");
    }

    #[test]
    fn high_fanout_penalizes_delay() {
        let build = |fanout: usize| {
            let mut net = LutNetlist::new("f".into(), 6, vec!["a".into()]);
            let driver = net.push_lut(Lut {
                inputs: vec![Signal::Input(0)],
                truth: crate::lut::Truth::of(0b01),
            });
            let mut last = driver;
            for _ in 0..fanout {
                last = net.push_lut(Lut {
                    inputs: vec![Signal::Lut(driver)],
                    truth: crate::lut::Truth::of(0b01),
                });
            }
            net.push_output("y".into(), Signal::Lut(last));
            net
        };
        let lo = timed(&build(1)).critical_ns;
        let hi = timed(&build(12)).critical_ns;
        assert!(hi > lo, "{hi} <= {lo}");
    }

    #[test]
    fn passthrough_output_is_fast_but_nonzero() {
        let mut net = LutNetlist::new("p".into(), 6, vec!["a".into()]);
        net.push_output("y".into(), Signal::Input(0));
        let r = timed(&net);
        let d = Device::artix7();
        assert!(r.critical_ns >= d.t_ibuf_ns + d.t_obuf_ns);
    }

    #[test]
    fn arrival_times_are_monotone_along_chains() {
        let mut net = LutNetlist::new("m".into(), 6, vec!["a".into()]);
        let l0 = net.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: crate::lut::Truth::of(0b01),
        });
        let l1 = net.push_lut(Lut {
            inputs: vec![Signal::Lut(l0)],
            truth: crate::lut::Truth::of(0b01),
        });
        net.push_output("y".into(), Signal::Lut(l1));
        let r = timed(&net);
        assert!(r.arrival_ns[l1 as usize] > r.arrival_ns[l0 as usize]);
    }
}
