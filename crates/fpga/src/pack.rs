//! Slice packing: grouping LUTs into slices (4 LUT6 per 7-series slice).

use crate::lut::{LutNetlist, Signal};

/// A packing of LUTs into slices.
#[derive(Debug, Clone)]
pub struct Packing {
    /// `slices[s]` = LUT ids packed into slice `s`.
    slices: Vec<Vec<u32>>,
    /// `slice_of[l]` = slice index of LUT `l`.
    slice_of: Vec<u32>,
}

impl Packing {
    /// The slices, each a list of LUT ids.
    pub fn slices(&self) -> &[Vec<u32>] {
        &self.slices
    }

    /// Number of slices used — the paper's second area metric.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// The slice containing LUT `l`.
    pub fn slice_of(&self, l: u32) -> u32 {
        self.slice_of[l as usize]
    }
}

/// Packs LUTs into slices with a connectivity-driven greedy heuristic.
///
/// LUTs are visited in topological order; each is placed into the open
/// slice sharing the most signals with it (driver/sink or common input),
/// or into a fresh slice when no open slice has affinity or capacity.
/// This mirrors how Xilinx `map` clusters related LUTs, and produces the
/// LUT/slice ratios (≈ 2.5–4) seen in the paper's Table V.
///
/// # Examples
///
/// ```
/// use netlist::Netlist;
/// use rgf2m_fpga::{map, pack};
///
/// let mut net = Netlist::new("t");
/// let ins: Vec<_> = (0..12).map(|i| net.input(format!("x{i}"))).collect();
/// let root = net.xor_balanced(&ins);
/// net.output("y", root);
/// let mapped = map::map_to_luts(&net, &map::MapOptions::new());
/// let packing = pack::pack_slices(&mapped, 4);
/// assert!(packing.num_slices() >= mapped.num_luts().div_ceil(4));
/// ```
pub fn pack_slices(lutnet: &LutNetlist, luts_per_slice: usize) -> Packing {
    assert!(luts_per_slice >= 1);
    let n = lutnet.num_luts();
    let mut slices: Vec<Vec<u32>> = Vec::new();
    let mut slice_of = vec![u32::MAX; n];
    // Signals used by each open slice, for affinity scoring.
    const MAX_OPEN: usize = 24;
    let mut open: Vec<(usize, Vec<Signal>)> = Vec::new(); // (slice idx, signals)

    for (l, lut) in lutnet.luts().iter().enumerate() {
        let mut my_signals: Vec<Signal> = lut.inputs.clone();
        my_signals.push(Signal::Lut(l as u32));
        // Score open slices.
        let mut best: Option<(usize, usize)> = None; // (open idx, score)
        for (oi, (si, signals)) in open.iter().enumerate() {
            if slices[*si].len() >= luts_per_slice {
                continue;
            }
            let score = my_signals.iter().filter(|s| signals.contains(s)).count();
            if score > 0 && best.is_none_or(|(_, bs)| score > bs) {
                best = Some((oi, score));
            }
        }
        let si = match best {
            Some((oi, _)) => {
                let (si, signals) = &mut open[oi];
                signals.extend(my_signals);
                *si
            }
            None => {
                let si = slices.len();
                slices.push(Vec::new());
                open.push((si, my_signals));
                if open.len() > MAX_OPEN {
                    open.remove(0);
                }
                si
            }
        };
        slices[si].push(l as u32);
        slice_of[l] = si as u32;
        // Retire full slices from the open list.
        open.retain(|(s, _)| slices[*s].len() < luts_per_slice);
    }
    // Consolidation pass: the affinity phase leaves many underfull
    // slices on designs wider than the open window. Real packers fill
    // slices under area pressure even without affinity, so merge
    // underfull slices greedily until no two can be combined. This is
    // what produces the LUT/slice ratios (≈ 3) of the paper's Table V.
    let mut order: Vec<usize> = (0..slices.len()).collect();
    order.sort_by_key(|&s| slices[s].len());
    let mut merged_into: Vec<Option<usize>> = vec![None; slices.len()];
    let mut fill_targets: Vec<usize> = Vec::new();
    for &s in order.iter().rev() {
        if slices[s].is_empty() {
            continue;
        }
        // Try to pour this slice into an existing target with room.
        let need = slices[s].len();
        if let Some(pos) = fill_targets
            .iter()
            .position(|&t| t != s && slices[t].len() + need <= luts_per_slice)
        {
            let t = fill_targets[pos];
            let moved = std::mem::take(&mut slices[s]);
            for &l in &moved {
                slice_of[l as usize] = t as u32;
            }
            slices[t].extend(moved);
            merged_into[s] = Some(t);
        } else if slices[s].len() < luts_per_slice {
            fill_targets.push(s);
        }
    }
    // Compact away emptied slices.
    let mut remap = vec![u32::MAX; slices.len()];
    let mut compact: Vec<Vec<u32>> = Vec::new();
    for (s, luts) in slices.into_iter().enumerate() {
        if !luts.is_empty() {
            remap[s] = compact.len() as u32;
            compact.push(luts);
        }
    }
    for so in slice_of.iter_mut() {
        *so = remap[*so as usize];
        debug_assert_ne!(*so, u32::MAX);
    }
    Packing {
        slices: compact,
        slice_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;

    fn chain(n: usize) -> LutNetlist {
        let mut net = LutNetlist::new("c".into(), 6, vec!["a".into()]);
        let mut prev = Signal::Input(0);
        for _ in 0..n {
            let id = net.push_lut(Lut {
                inputs: vec![prev],
                truth: crate::lut::Truth::of(0b01),
            });
            prev = Signal::Lut(id);
        }
        net.push_output("y".into(), prev);
        net
    }

    #[test]
    fn chain_packs_densely() {
        // A connected chain should fill slices to capacity.
        let net = chain(16);
        let p = pack_slices(&net, 4);
        assert_eq!(p.num_slices(), 4);
        for s in p.slices() {
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn every_lut_is_assigned_exactly_once() {
        let net = chain(10);
        let p = pack_slices(&net, 4);
        let mut seen = [false; 10];
        for (si, luts) in p.slices().iter().enumerate() {
            for &l in luts {
                assert!(!seen[l as usize], "LUT {l} packed twice");
                seen[l as usize] = true;
                assert_eq!(p.slice_of(l), si as u32);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn capacity_is_respected() {
        let net = chain(23);
        let p = pack_slices(&net, 4);
        for s in p.slices() {
            assert!(s.len() <= 4);
        }
        assert!(p.num_slices() >= 6);
    }

    #[test]
    fn disconnected_luts_consolidate_under_area_pressure() {
        // LUTs with disjoint supports have no affinity — the greedy
        // phase opens a slice each, and the consolidation pass then
        // fills them into one full slice (like `map` under pressure).
        let mut net = LutNetlist::new("d".into(), 6, (0..8).map(|i| format!("x{i}")).collect());
        for i in 0..4 {
            let id = net.push_lut(Lut {
                inputs: vec![Signal::Input(2 * i), Signal::Input(2 * i + 1)],
                truth: crate::lut::Truth::of(0b0110),
            });
            net.push_output(format!("y{i}"), Signal::Lut(id));
        }
        let p = pack_slices(&net, 4);
        assert_eq!(p.num_slices(), 1);
        assert_eq!(p.slices()[0].len(), 4);
    }

    #[test]
    fn consolidation_respects_capacity_and_assignment_consistency() {
        // 7 disconnected LUTs with capacity 4 → exactly 2 slices.
        let mut net = LutNetlist::new("d7".into(), 6, (0..14).map(|i| format!("x{i}")).collect());
        for i in 0..7 {
            let id = net.push_lut(Lut {
                inputs: vec![Signal::Input(2 * i), Signal::Input(2 * i + 1)],
                truth: crate::lut::Truth::of(0b1000),
            });
            net.push_output(format!("y{i}"), Signal::Lut(id));
        }
        let p = pack_slices(&net, 4);
        assert_eq!(p.num_slices(), 2);
        for (si, luts) in p.slices().iter().enumerate() {
            assert!(luts.len() <= 4);
            for &l in luts {
                assert_eq!(p.slice_of(l), si as u32);
            }
        }
    }

    #[test]
    fn single_lut_single_slice() {
        let net = chain(1);
        assert_eq!(pack_slices(&net, 4).num_slices(), 1);
    }
}
