//! Structural lint for mapped (LUT-level) netlists — the counterpart
//! of [`netlist::lint::lint_netlist`], sharing its typed
//! [`LintReport`].
//!
//! Errors mean the LUT netlist is not a valid combinational design
//! (forward/self references breaking topological order, reads of
//! missing LUTs or out-of-range primary inputs, outputs depending on
//! such signals); warnings flag hygiene defects the mapper should not
//! produce (dead LUTs, duplicate LUTs, truth tables that ignore a
//! connected input). The pipeline runs this pass after every mapping —
//! before any verification — and surfaces the duplicate/dead counts in
//! `ImplReport`.

use std::collections::HashMap;

use netlist::lint::{LintKind, LintReport};

use crate::lut::{LutAnalysis, LutNetlist, Signal, Truth};

/// Lints a mapped LUT netlist.
///
/// Every LUT-anchored finding carries the name of the output cone the
/// LUT belongs to (the first declared output whose transitive fanin
/// contains it), so a `LUT 17` message can be traced back to a
/// coefficient bit without replaying the mapper.
pub fn lint_mapped(mapped: &LutNetlist) -> LintReport {
    let mut report = LintReport::new();
    let luts = mapped.luts();
    let n_inputs = mapped.input_names().len();

    // Owning cone per LUT: the first declared output that reaches it.
    // The walk is defensive — out-of-range and forward references (the
    // very defects linted below) are skipped, and the visited check
    // terminates even on reference cycles.
    let mut cone: Vec<Option<usize>> = vec![None; luts.len()];
    for (k, (_, s)) in mapped.outputs().iter().enumerate() {
        let mut stack = match *s {
            Signal::Lut(j) if (j as usize) < luts.len() => vec![j as usize],
            _ => continue,
        };
        while let Some(i) = stack.pop() {
            if cone[i].is_some() {
                continue;
            }
            cone[i] = Some(k);
            for s in &luts[i].inputs {
                if let Signal::Lut(j) = *s {
                    if (j as usize) < luts.len() {
                        stack.push(j as usize);
                    }
                }
            }
        }
    }
    let cone_of = |i: usize| -> String {
        match cone[i] {
            Some(k) => format!(" (cone of {})", mapped.outputs()[k].0),
            None => String::new(),
        }
    };

    // Signal validity + topological order, per LUT input.
    let mut invalid = vec![false; luts.len()];
    for (i, lut) in luts.iter().enumerate() {
        for (slot, s) in lut.inputs.iter().enumerate() {
            match *s {
                Signal::Input(v) if v as usize >= n_inputs => {
                    invalid[i] = true;
                    report.push(
                        LintKind::UndrivenInput,
                        i,
                        format!(
                            "LUT {i} input {slot} reads primary input {v}, but only {n_inputs} are declared{}",
                            cone_of(i)
                        ),
                    );
                }
                Signal::Lut(j) if j as usize >= luts.len() => {
                    invalid[i] = true;
                    report.push(
                        LintKind::UndrivenInput,
                        i,
                        format!(
                            "LUT {i} input {slot} reads LUT {j}, which does not exist{}",
                            cone_of(i)
                        ),
                    );
                }
                Signal::Lut(j) if j as usize >= i => {
                    invalid[i] = true;
                    report.push(
                        LintKind::CombinationalCycle,
                        i,
                        format!(
                            "LUT {i} input {slot} reads LUT {j}, which does not precede it{}",
                            cone_of(i)
                        ),
                    );
                }
                _ => {}
            }
        }
    }

    // Output signal validity.
    let mut bad_outputs = vec![false; mapped.outputs().len()];
    for (k, (name, s)) in mapped.outputs().iter().enumerate() {
        match *s {
            Signal::Input(v) if v as usize >= n_inputs => {
                bad_outputs[k] = true;
                report.push(
                    LintKind::UndrivenInput,
                    k,
                    format!(
                        "output {k} ({name}) reads primary input {v}, but only {n_inputs} are declared"
                    ),
                );
            }
            Signal::Lut(j) if j as usize >= luts.len() => {
                bad_outputs[k] = true;
                report.push(
                    LintKind::UndrivenInput,
                    k,
                    format!("output {k} ({name}) reads LUT {j}, which does not exist"),
                );
            }
            _ => {}
        }
    }

    // Outputs transitively depending on an invalid signal. A visited
    // set guards the walk, so it terminates even on cyclic references.
    if invalid.iter().any(|&b| b) || bad_outputs.iter().any(|&b| b) {
        let mut tainted = vec![false; luts.len()];
        let mut visited = vec![false; luts.len()];
        fn taints(
            luts: &[crate::lut::Lut],
            invalid: &[bool],
            tainted: &mut [bool],
            visited: &mut [bool],
            i: usize,
        ) -> bool {
            if visited[i] {
                return tainted[i];
            }
            visited[i] = true;
            let mut t = invalid[i];
            for s in &luts[i].inputs {
                if let Signal::Lut(j) = *s {
                    let j = j as usize;
                    if j < luts.len() && taints(luts, invalid, tainted, visited, j) {
                        t = true;
                    }
                }
            }
            tainted[i] = t;
            t
        }
        for (k, (name, s)) in mapped.outputs().iter().enumerate() {
            let bad = bad_outputs[k]
                || match *s {
                    Signal::Lut(j) if (j as usize) < luts.len() => {
                        taints(luts, &invalid, &mut tainted, &mut visited, j as usize)
                    }
                    _ => false,
                };
            if bad && !bad_outputs[k] {
                report.push(
                    LintKind::UndrivenOutput,
                    k,
                    format!("output {k} ({name}) transitively depends on an invalid signal"),
                );
            }
        }
    }

    // Dead LUTs: drive neither a LUT input nor a primary output.
    // `LutAnalysis` skips the invalid references this pass just
    // reported, so it is safe to share with timing analysis here.
    let fanouts = LutAnalysis::of(mapped).lut_fanouts;
    for (i, f) in fanouts.iter().enumerate() {
        if *f == 0 {
            report.push(
                LintKind::DeadNode,
                i,
                format!(
                    "LUT {i} drives neither a LUT input nor a primary output{}",
                    cone_of(i)
                ),
            );
        }
    }

    // Duplicate LUTs: same input signals, same (masked) truth table.
    let mut seen: HashMap<(Vec<Signal>, Truth), usize> = HashMap::new();
    for (i, lut) in luts.iter().enumerate() {
        let key = (lut.inputs.clone(), lut.truth.mask(lut.inputs.len()));
        match seen.get(&key) {
            Some(&first) => report.push(
                LintKind::DuplicateGate,
                i,
                format!(
                    "LUT {i} has the same inputs and truth table as LUT {first}{}",
                    cone_of(i)
                ),
            ),
            None => {
                seen.insert(key, i);
            }
        }
    }

    // Truth tables constant in a connected input.
    for (i, lut) in luts.iter().enumerate() {
        let n = lut.inputs.len();
        for v in 0..n {
            let step = 1usize << v;
            let ignored = (0..1usize << n)
                .filter(|idx| idx & step == 0)
                .all(|idx| lut.truth.bit(idx) == lut.truth.bit(idx | step));
            if ignored {
                report.push(
                    LintKind::IgnoredLutInput,
                    i,
                    format!(
                        "LUT {i} truth table ignores connected input {v}{}",
                        cone_of(i)
                    ),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;
    use netlist::lint::Severity;

    fn fresh(k: usize, n_inputs: usize) -> LutNetlist {
        let names: Vec<String> = (0..n_inputs).map(|i| format!("x{i}")).collect();
        LutNetlist::new("t".into(), k, names)
    }

    #[test]
    fn clean_mapped_netlist() {
        let mut n = fresh(4, 2);
        let l0 = n.push_lut(Lut {
            inputs: vec![Signal::Input(0), Signal::Input(1)],
            truth: Truth::of(0b0110),
        });
        n.push_output("y".into(), Signal::Lut(l0));
        let report = lint_mapped(&n);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn forward_reference_is_a_cycle_error() {
        let mut n = fresh(4, 1);
        let l0 = n.push_lut(Lut {
            inputs: vec![Signal::Lut(1)], // reads a later LUT
            truth: Truth::of(0b10),
        });
        n.push_lut(Lut {
            inputs: vec![Signal::Input(0), Signal::Lut(l0)],
            truth: Truth::of(0b0110),
        });
        n.push_output("y".into(), Signal::Lut(1));
        let report = lint_mapped(&n);
        assert!(report.has_errors());
        assert_eq!(report.count(LintKind::CombinationalCycle), 1);
        // The output depends on the broken LUT.
        assert_eq!(report.count(LintKind::UndrivenOutput), 1);
        assert_eq!(
            report.first_error().unwrap().kind,
            LintKind::CombinationalCycle
        );
    }

    #[test]
    fn out_of_range_reads_are_undriven_inputs() {
        let mut n = fresh(4, 1);
        n.push_lut(Lut {
            inputs: vec![Signal::Input(7)],
            truth: Truth::of(0b10),
        });
        n.push_output("y".into(), Signal::Lut(5));
        let report = lint_mapped(&n);
        assert_eq!(report.count(LintKind::UndrivenInput), 2);
        assert!(report.has_errors());
    }

    #[test]
    fn dead_and_duplicate_luts_are_warnings() {
        let mut n = fresh(4, 2);
        let and = Lut {
            inputs: vec![Signal::Input(0), Signal::Input(1)],
            truth: Truth::of(0b1000),
        };
        let l0 = n.push_lut(and.clone());
        let _dup = n.push_lut(and); // duplicate AND — and dead, too
        n.push_output("y".into(), Signal::Lut(l0));
        let report = lint_mapped(&n);
        assert!(!report.has_errors());
        assert_eq!(report.duplicate_gates(), 1);
        assert_eq!(report.dead_nodes(), 1);
        assert!(report
            .findings()
            .iter()
            .all(|f| f.severity() == Severity::Warning));
    }

    #[test]
    fn ignored_input_detected_and_masked_truth_compared() {
        let mut n = fresh(4, 2);
        // Truth 0b0101 over 2 vars: output = NOT input0, ignores input1.
        let l0 = n.push_lut(Lut {
            inputs: vec![Signal::Input(0), Signal::Input(1)],
            truth: Truth::of(0b0101),
        });
        n.push_output("y".into(), Signal::Lut(l0));
        let report = lint_mapped(&n);
        assert_eq!(report.count(LintKind::IgnoredLutInput), 1);
        assert!(report.findings()[0].message.contains("input 1"));
    }

    #[test]
    fn constant_zero_lut_ignores_everything() {
        let mut n = fresh(4, 1);
        let l0 = n.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: Truth::ZERO,
        });
        n.push_output("y".into(), Signal::Lut(l0));
        let report = lint_mapped(&n);
        assert_eq!(report.count(LintKind::IgnoredLutInput), 1);
    }

    #[test]
    fn lut_findings_name_their_output_cone() {
        let mut n = fresh(4, 2);
        let and = Lut {
            inputs: vec![Signal::Input(0), Signal::Input(1)],
            truth: Truth::of(0b1000),
        };
        let l0 = n.push_lut(and.clone());
        let l1 = n.push_lut(and); // duplicate of l0, but drives c1
        n.push_output("c0".into(), Signal::Lut(l0));
        n.push_output("c1".into(), Signal::Lut(l1));
        let report = lint_mapped(&n);
        let dup = report
            .findings()
            .iter()
            .find(|f| f.kind == LintKind::DuplicateGate)
            .unwrap();
        assert!(dup.message.contains("LUT 1"), "{}", dup.message);
        assert!(dup.message.contains("(cone of c1)"), "{}", dup.message);

        // A dead LUT belongs to no cone: its finding stays unlabelled.
        let mut n = fresh(4, 1);
        let l0 = n.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: Truth::of(0b10),
        });
        n.push_lut(Lut {
            inputs: vec![Signal::Input(0)],
            truth: Truth::of(0b01),
        });
        n.push_output("y".into(), Signal::Lut(l0));
        let report = lint_mapped(&n);
        let dead = report
            .findings()
            .iter()
            .find(|f| f.kind == LintKind::DeadNode)
            .unwrap();
        assert!(!dead.message.contains("cone of"), "{}", dead.message);
    }

    #[test]
    fn output_reading_missing_lut_is_an_error() {
        let mut n = fresh(4, 1);
        n.push_output("y".into(), Signal::Lut(0));
        let report = lint_mapped(&n);
        assert!(report.has_errors());
        assert_eq!(report.count(LintKind::UndrivenInput), 1);
    }
}
