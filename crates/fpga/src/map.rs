//! Priority-cuts k-LUT technology mapping.
//!
//! The classic algorithm family behind ABC's `if` command and commercial
//! mappers: enumerate a bounded set of k-feasible cuts per node, label
//! nodes with their optimal mapped depth, then select covering cuts
//! under required-time constraints while minimizing area flow.

use std::collections::HashMap;

use netlist::{analysis, Gate, Netlist, NodeId};

use crate::lut::{Lut, LutNetlist, Signal, Truth, MAX_LUT_INPUTS};

/// How much restructuring freedom the mapper has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapMode {
    /// Cones may absorb multi-fanout internal nodes (duplicating their
    /// logic into several LUTs) — full synthesis freedom, the behaviour
    /// the paper's *proposed* flat netlists are designed to exploit.
    Free,
    /// Multi-fanout nodes act as cut barriers: every shared node becomes
    /// its own LUT root. Models a conservative synthesiser that honours
    /// the structural sharing present in the input netlist — the
    /// behaviour the parenthesised netlists of \[7\] force.
    FanoutPreserving,
}

/// Options controlling [`map_to_luts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOptions {
    /// LUT input width `k` (≤ [`MAX_LUT_INPUTS`]).
    pub k: usize,
    /// Priority-cut list length per node.
    pub cuts_per_node: usize,
    /// Restructuring freedom.
    pub mode: MapMode,
}

impl MapOptions {
    /// Default options: k = 6, 8 cuts per node, free restructuring.
    pub fn new() -> Self {
        MapOptions {
            k: 6,
            cuts_per_node: 8,
            mode: MapMode::Free,
        }
    }

    /// Sets the LUT width.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than [`MAX_LUT_INPUTS`] (truth
    /// tables are stored in one [`Truth`]).
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(
            (1..=MAX_LUT_INPUTS).contains(&k),
            "k must be in 1..={MAX_LUT_INPUTS}"
        );
        self.k = k;
        self
    }

    /// Sets the mapping mode.
    pub fn with_mode(mut self, mode: MapMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the priority-cut list length.
    pub fn with_cuts_per_node(mut self, c: usize) -> Self {
        assert!(c >= 1);
        self.cuts_per_node = c;
        self
    }
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions::new()
    }
}

/// A k-feasible cut: sorted leaf node indices.
#[derive(Debug, Clone)]
struct Cut {
    leaves: Vec<u32>,
    /// Mapped depth if this cut implements its root.
    depth: u32,
    /// Area-flow estimate of this cut.
    area_flow: f64,
}

/// Merges two sorted leaf sets; `None` if the union exceeds `k`.
fn merge_leaves(a: &[u32], b: &[u32], k: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(k);
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if out.len() == k {
            return None;
        }
        out.push(next);
    }
    Some(out)
}

/// Per-node mapping state.
struct NodeInfo {
    /// Priority cuts (non-trivial first, trivial cut always last).
    cuts: Vec<Cut>,
    /// Optimal mapped depth (0 for inputs/constants).
    label: u32,
    /// Area-flow of the best cut.
    area_flow: f64,
}

/// Maps a gate netlist to k-input LUTs.
///
/// Returns a [`LutNetlist`] with the same interface (input order and
/// output names). Every mapping should be re-verified with
/// [`verify_mapping`]; the flow does this automatically.
///
/// # Panics
///
/// Panics if `opts.k > MAX_LUT_INPUTS`.
pub fn map_to_luts(net: &Netlist, opts: &MapOptions) -> LutNetlist {
    assert!(
        opts.k <= MAX_LUT_INPUTS,
        "truth tables limited to k <= {MAX_LUT_INPUTS}"
    );
    let n = net.len();
    let fanouts = analysis::fanouts(net);
    let mut info: Vec<NodeInfo> = Vec::with_capacity(n);

    // Phase 1: cut enumeration + depth labels + area flow, in topo order.
    for id in net.node_ids() {
        let idx = id.index();
        let node_info = match net.gate(id) {
            Gate::Input(_) | Gate::Const(_) => NodeInfo {
                cuts: vec![Cut {
                    leaves: vec![idx as u32],
                    depth: 0,
                    area_flow: 0.0,
                }],
                label: 0,
                area_flow: 0.0,
            },
            Gate::And(a, b) | Gate::Xor(a, b) => {
                let mut cands: Vec<Cut> = Vec::new();
                let use_trivial_only = |child: NodeId| {
                    opts.mode == MapMode::FanoutPreserving
                        && fanouts[child.index()] > 1
                        && matches!(net.gate(child), Gate::And(_, _) | Gate::Xor(_, _))
                };
                let child_cuts = |child: NodeId, info: &[NodeInfo]| -> Vec<Vec<u32>> {
                    if use_trivial_only(child) {
                        vec![vec![child.index() as u32]]
                    } else {
                        info[child.index()]
                            .cuts
                            .iter()
                            .map(|c| c.leaves.clone())
                            .collect()
                    }
                };
                let ca = child_cuts(a, &info);
                let cb = child_cuts(b, &info);
                for la in &ca {
                    for lb in &cb {
                        if let Some(leaves) = merge_leaves(la, lb, opts.k) {
                            if cands.iter().any(|c| c.leaves == leaves) {
                                continue;
                            }
                            let depth = 1 + leaves
                                .iter()
                                .map(|&l| info[l as usize].label)
                                .max()
                                .unwrap_or(0);
                            let area_flow = (1.0
                                + leaves
                                    .iter()
                                    .map(|&l| info[l as usize].area_flow)
                                    .sum::<f64>())
                                / (fanouts[idx].max(1) as f64);
                            cands.push(Cut {
                                leaves,
                                depth,
                                area_flow,
                            });
                        }
                    }
                }
                cands.sort_by(|x, y| {
                    x.depth
                        .cmp(&y.depth)
                        .then(x.area_flow.partial_cmp(&y.area_flow).unwrap())
                        .then(x.leaves.len().cmp(&y.leaves.len()))
                });
                cands.truncate(opts.cuts_per_node);
                let label = cands.first().map(|c| c.depth).expect("gate has a cut");
                let area_flow = cands
                    .iter()
                    .map(|c| c.area_flow)
                    .fold(f64::INFINITY, f64::min);
                // Trivial cut last, for parents' merging.
                cands.push(Cut {
                    leaves: vec![idx as u32],
                    depth: u32::MAX, // never selectable as implementation
                    area_flow: f64::INFINITY,
                });
                NodeInfo {
                    cuts: cands,
                    label,
                    area_flow,
                }
            }
        };
        info.push(node_info);
    }

    // Phase 2: cut selection under required times, minimizing area flow.
    let global_depth = net
        .outputs()
        .iter()
        .map(|(_, o)| info[o.index()].label)
        .max()
        .unwrap_or(0);
    let mut required = vec![u32::MAX; n];
    let mut needed = vec![false; n];
    for (_, o) in net.outputs() {
        if matches!(net.gate(*o), Gate::And(_, _) | Gate::Xor(_, _)) {
            needed[o.index()] = true;
            required[o.index()] = required[o.index()].min(global_depth);
        }
    }
    let mut chosen: Vec<Option<usize>> = vec![None; n];
    for idx in (0..n).rev() {
        if !needed[idx] {
            continue;
        }
        let req = required[idx];
        // Pick the min-area-flow cut meeting the required time; the
        // depth-best cut always does (label <= req by construction).
        let (best, _) = info[idx]
            .cuts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.depth <= req)
            .min_by(|(_, x), (_, y)| {
                x.area_flow
                    .partial_cmp(&y.area_flow)
                    .unwrap()
                    .then(x.depth.cmp(&y.depth))
            })
            .expect("at least the depth-optimal cut meets required time");
        chosen[idx] = Some(best);
        let cut_depth = info[idx].cuts[best].depth;
        debug_assert!(cut_depth <= req);
        for &leaf in &info[idx].cuts[best].leaves {
            let li = leaf as usize;
            if matches!(net.gate(net.node_id(li)), Gate::And(_, _) | Gate::Xor(_, _)) {
                needed[li] = true;
                required[li] = required[li].min(req.saturating_sub(1));
            }
        }
    }

    // Phase 3: extraction + truth tables.
    let mut out = LutNetlist::new(net.name().to_string(), opts.k, net.input_names().to_vec());
    let mut lut_of: HashMap<usize, u32> = HashMap::new();
    for idx in 0..n {
        let Some(cut_idx) = chosen[idx] else { continue };
        let leaves = &info[idx].cuts[cut_idx].leaves;
        let truth = cone_truth(net, idx, leaves);
        let inputs: Vec<Signal> = leaves
            .iter()
            .map(|&l| signal_for(net, l as usize, &lut_of))
            .collect();
        let id = out.push_lut(Lut { inputs, truth });
        lut_of.insert(idx, id);
    }
    for (name, o) in net.outputs() {
        out.push_output(name.clone(), signal_for(net, o.index(), &lut_of));
    }
    out
}

fn signal_for(net: &Netlist, idx: usize, lut_of: &HashMap<usize, u32>) -> Signal {
    if let Some(&l) = lut_of.get(&idx) {
        return Signal::Lut(l);
    }
    match net.gate(net.node_id(idx)) {
        Gate::Input(i) => Signal::Input(i),
        Gate::Const(v) => Signal::Const(v),
        _ => panic!("gate node {idx} was not mapped"),
    }
}

/// The truth-table pattern of variable `v`: entry `idx` is set iff bit
/// `v` of `idx` is. Variables 0..6 repeat a classic single-word pattern
/// across all four words; variables 6 and 7 select whole words (bit 6
/// of `idx` is bit 0 of the word index, bit 7 is bit 1).
fn var_pattern(v: usize) -> Truth {
    const P6: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    match v {
        0..=5 => Truth([P6[v]; 4]),
        6 => Truth([0, u64::MAX, 0, u64::MAX]),
        7 => Truth([0, 0, u64::MAX, u64::MAX]),
        _ => panic!("variable {v} exceeds MAX_LUT_INPUTS"),
    }
}

/// Truth table of the cone rooted at `root` with the given leaves, over
/// ≤ [`MAX_LUT_INPUTS`] variables.
fn cone_truth(net: &Netlist, root: usize, leaves: &[u32]) -> Truth {
    let mut memo: HashMap<usize, Truth> = HashMap::new();
    for (v, &leaf) in leaves.iter().enumerate() {
        memo.insert(leaf as usize, var_pattern(v));
    }
    fn eval(net: &Netlist, idx: usize, memo: &mut HashMap<usize, Truth>) -> Truth {
        if let Some(&w) = memo.get(&idx) {
            return w;
        }
        let w = match net.gate(net.node_id(idx)) {
            Gate::Const(false) => Truth::ZERO,
            Gate::Const(true) => Truth::ONES,
            Gate::Input(_) => panic!("input reached below a cut leaf"),
            Gate::And(a, b) => eval(net, a.index(), memo) & eval(net, b.index(), memo),
            Gate::Xor(a, b) => eval(net, a.index(), memo) ^ eval(net, b.index(), memo),
        };
        memo.insert(idx, w);
        w
    }
    // Mask to the populated variable count.
    eval(net, root, &mut memo).mask(leaves.len())
}

/// Re-verifies a mapping against its source netlist on `rounds × 64`
/// random patterns (deterministic seed). Returns `true` when equivalent.
pub fn verify_mapping(net: &Netlist, mapped: &LutNetlist, rounds: usize, seed: u64) -> bool {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rounds {
        let words: Vec<u64> = (0..net.num_inputs()).map(|_| rng.gen()).collect();
        if net.eval_words(&words) != mapped.eval_words(&words) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_respects_k() {
        assert_eq!(merge_leaves(&[1, 3], &[2, 3], 3), Some(vec![1, 2, 3]));
        assert_eq!(merge_leaves(&[1, 3], &[2, 4], 3), None);
        assert_eq!(merge_leaves(&[], &[5], 6), Some(vec![5]));
    }

    fn xor_tree(leaves: usize) -> Netlist {
        let mut net = Netlist::new("xt");
        let ins: Vec<_> = (0..leaves).map(|i| net.input(format!("x{i}"))).collect();
        let root = net.xor_balanced(&ins);
        net.output("y", root);
        net
    }

    #[test]
    fn xor3_fits_one_lut() {
        let net = xor_tree(3);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.num_luts(), 1);
        assert_eq!(mapped.depth(), 1);
        assert!(verify_mapping(&net, &mapped, 4, 1));
    }

    #[test]
    fn xor24_maps_to_two_levels() {
        // A binary-balanced 24-leaf tree has 4-leaf subtree boundaries at
        // level 2, so a depth-2 cover (6 LUTs of 4 + 1 root LUT) exists
        // structurally and the depth-oriented mapper must find it.
        let net = xor_tree(24);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.depth(), 2, "{mapped}");
        assert_eq!(mapped.num_luts(), 7, "{mapped}");
        assert!(verify_mapping(&net, &mapped, 8, 2));
    }

    #[test]
    fn xor36_structural_mapping_needs_three_levels() {
        // 36 leaves would fit 6×6 LUTs, but a *binary-balanced* tree has
        // no 6-leaf subtree boundaries; structural mapping (no
        // re-association) is stuck at depth 3. The resynthesis pass
        // (crate::resynth) exists precisely to fix this — mirroring what
        // the paper relies on XST to do for its flat Table IV forms.
        let net = xor_tree(36);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.depth(), 3, "{mapped}");
        assert!(verify_mapping(&net, &mapped, 8, 2));
    }

    #[test]
    fn free_mode_duplicates_shared_logic_for_depth() {
        // x = a^b feeds two outputs; with k=3 the free mapper absorbs x
        // into both cones (2 LUTs, depth 1); the fanout-preserving
        // mapper keeps x as a barrier (3 LUTs, depth 2).
        let mut net = Netlist::new("sh");
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let d = net.input("d");
        let x = net.xor(a, b);
        let y1 = net.xor(x, c);
        let y2 = net.xor(x, d);
        net.output("y1", y1);
        net.output("y2", y2);

        let free = map_to_luts(&net, &MapOptions::new().with_k(3));
        assert_eq!(free.depth(), 1);
        assert_eq!(free.num_luts(), 2);
        assert!(verify_mapping(&net, &free, 4, 3));

        let fp = map_to_luts(
            &net,
            &MapOptions::new()
                .with_k(3)
                .with_mode(MapMode::FanoutPreserving),
        );
        assert_eq!(fp.depth(), 2);
        assert_eq!(fp.num_luts(), 3);
        assert!(verify_mapping(&net, &fp, 4, 4));
    }

    #[test]
    fn maps_and_xor_mix() {
        let mut net = Netlist::new("m");
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let p = net.and(a, b);
        let q = net.and(b, c);
        let r = net.xor(p, q);
        let s = net.and(r, a);
        net.output("y", s);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.num_luts(), 1); // 3 inputs total — one LUT6
        assert!(verify_mapping(&net, &mapped, 8, 5));
    }

    #[test]
    fn passthrough_and_const_outputs() {
        let mut net = Netlist::new("p");
        let a = net.input("a");
        let t = net.constant(true);
        net.output("same", a);
        net.output("one", t);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.num_luts(), 0);
        assert_eq!(
            mapped.outputs(),
            &[
                ("same".to_string(), Signal::Input(0)),
                ("one".to_string(), Signal::Const(true))
            ]
        );
    }

    #[test]
    fn cone_truth_of_xor2() {
        let mut net = Netlist::new("t");
        let a = net.input("a");
        let b = net.input("b");
        let x = net.xor(a, b);
        net.output("y", x);
        let truth = cone_truth(&net, x.index(), &[a.index() as u32, b.index() as u32]);
        assert_eq!(truth, Truth::of(0b0110));
    }

    #[test]
    fn var_patterns_encode_index_bits() {
        for v in 0..MAX_LUT_INPUTS {
            let p = var_pattern(v);
            for idx in 0..(1usize << MAX_LUT_INPUTS) {
                assert_eq!(p.bit(idx), (idx >> v) & 1 == 1, "var {v}, entry {idx}");
            }
        }
    }

    #[test]
    fn xor8_fits_one_wide_lut() {
        // On a k=8 fabric an 8-input XOR is a single LUT; the truth
        // table lives in all four words and must still verify.
        let net = xor_tree(8);
        let mapped = map_to_luts(&net, &MapOptions::new().with_k(8));
        assert_eq!(mapped.num_luts(), 1, "{mapped}");
        assert_eq!(mapped.depth(), 1);
        assert!(verify_mapping(&net, &mapped, 8, 6));
    }

    #[test]
    fn narrow_k4_mapping_never_exceeds_four_inputs() {
        let net = xor_tree(24);
        let mapped = map_to_luts(&net, &MapOptions::new().with_k(4));
        assert!(mapped.luts().iter().all(|l| l.inputs.len() <= 4));
        assert!(verify_mapping(&net, &mapped, 8, 7));
    }
}
