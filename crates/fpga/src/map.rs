//! Priority-cuts k-LUT technology mapping.
//!
//! The classic algorithm family behind ABC's `if` command and commercial
//! mappers: enumerate a bounded set of k-feasible cuts per node, label
//! nodes with their optimal mapped depth, then select covering cuts
//! under required-time constraints while minimizing area flow.
//!
//! The data plane is allocation-free on the hot path: cut leaves live in
//! one flat arena (`CutStore`) addressed by `(start, len)` ranges,
//! every cut carries a 64-bit leaf-membership signature for O(1) dedup
//! and merge-infeasibility pre-checks, candidates are kept in a bounded
//! priority list (never more than `cuts_per_node` live, however many
//! merges a wide-LUT node produces), and cone truth extraction uses an
//! epoch-stamped memo instead of a per-cone `HashMap`. All of it is
//! reusable across mappings through [`MapScratch`], and all of it is
//! bit-identical to the straightforward collect/dedup/sort formulation.

use netlist::analysis::NetAnalysis;
use netlist::{Gate, Netlist, NodeId};

use crate::lut::{Lut, LutNetlist, Signal, Truth, MAX_LUT_INPUTS};

/// How much restructuring freedom the mapper has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapMode {
    /// Cones may absorb multi-fanout internal nodes (duplicating their
    /// logic into several LUTs) — full synthesis freedom, the behaviour
    /// the paper's *proposed* flat netlists are designed to exploit.
    Free,
    /// Multi-fanout nodes act as cut barriers: every shared node becomes
    /// its own LUT root. Models a conservative synthesiser that honours
    /// the structural sharing present in the input netlist — the
    /// behaviour the parenthesised netlists of \[7\] force.
    FanoutPreserving,
}

/// Options controlling [`map_to_luts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOptions {
    /// LUT input width `k` (≤ [`MAX_LUT_INPUTS`]).
    pub k: usize,
    /// Priority-cut list length per node.
    pub cuts_per_node: usize,
    /// Restructuring freedom.
    pub mode: MapMode,
}

impl MapOptions {
    /// Default options: k = 6, 8 cuts per node, free restructuring.
    pub fn new() -> Self {
        MapOptions {
            k: 6,
            cuts_per_node: 8,
            mode: MapMode::Free,
        }
    }

    /// The width-derived priority-cut budget: 8 for the narrow fabrics,
    /// 4 once `k` reaches 8.
    ///
    /// Cut enumeration cost grows with the square of the list length,
    /// and the k = 8 ALM-style fabric pays that on far more feasible
    /// merges per node; halving the budget there keeps wide-LUT mapping
    /// bounded. [`crate::Target::map_options`] applies this default;
    /// [`MapOptions::with_cuts_per_node`] is the escape hatch back to
    /// any explicit budget.
    pub fn default_cuts_for(k: usize) -> usize {
        if k >= 8 {
            4
        } else {
            8
        }
    }

    /// Sets the LUT width.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than [`MAX_LUT_INPUTS`] (truth
    /// tables are stored in one [`Truth`]).
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(
            (1..=MAX_LUT_INPUTS).contains(&k),
            "k must be in 1..={MAX_LUT_INPUTS}"
        );
        self.k = k;
        self
    }

    /// Sets the mapping mode.
    pub fn with_mode(mut self, mode: MapMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the priority-cut list length.
    pub fn with_cuts_per_node(mut self, c: usize) -> Self {
        assert!(c >= 1);
        self.cuts_per_node = c;
        self
    }
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions::new()
    }
}

/// 64-bit leaf-membership signature: bit `l % 64` is set for every leaf
/// `l`. Equal leaf sets have equal signatures, so a signature mismatch
/// refutes equality in O(1); `(sa | sb).count_ones()` lower-bounds the
/// size of the true leaf union, so exceeding `k` proves a merge
/// infeasible without touching the leaves.
fn leaf_sig(leaves: &[u32]) -> u64 {
    leaves.iter().fold(0u64, |s, &l| s | 1u64 << (l % 64))
}

/// Signature-level domination pre-check: `true` proves `a ⊄ b` (some
/// leaf of `a` maps to a bit `b` has no leaf on); `false` means "maybe a
/// subset" and a real comparison is needed.
fn sig_refutes_subset(sa: u64, sb: u64) -> bool {
    sa & !sb != 0
}

/// Merges two sorted leaf sets into `out` (whose length is the cut
/// capacity `k`); `None` if the union does not fit.
fn merge_leaves_into(a: &[u32], b: &[u32], out: &mut [u32]) -> Option<usize> {
    let (mut i, mut j, mut len) = (0, 0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if len == out.len() {
            return None;
        }
        out[len] = next;
        len += 1;
    }
    Some(len)
}

/// Per-cut metadata; the leaves live in the [`CutStore`] arena.
#[derive(Debug, Clone, Copy)]
struct CutMeta {
    start: u32,
    len: u16,
    sig: u64,
    /// Mapped depth if this cut implements its root.
    depth: u32,
    /// Area-flow estimate of this cut.
    area_flow: f64,
}

/// Arena-backed cut store: one flat leaf buffer plus `(start, len)`
/// ranges, so enumeration allocates nothing per cut and the cuts of one
/// node are contiguous in memory.
#[derive(Debug, Default)]
struct CutStore {
    /// Flat leaf arena; every cut is a slice of this.
    leaves: Vec<u32>,
    /// Per-cut metadata, in arena order.
    cuts: Vec<CutMeta>,
    /// Per-node `(first_cut, cut_count)` range into `cuts`, indexed by
    /// node. The trivial cut of a node is always the last of its range.
    ranges: Vec<(u32, u32)>,
}

impl CutStore {
    fn clear(&mut self, nodes: usize) {
        self.leaves.clear();
        self.cuts.clear();
        self.ranges.clear();
        self.ranges.reserve(nodes);
    }

    fn leaves_of(&self, m: &CutMeta) -> &[u32] {
        &self.leaves[m.start as usize..m.start as usize + m.len as usize]
    }

    fn push_cut(&mut self, leaves: &[u32], sig: u64, depth: u32, area_flow: f64) {
        let start = self.leaves.len() as u32;
        self.leaves.extend_from_slice(leaves);
        self.cuts.push(CutMeta {
            start,
            len: leaves.len() as u16,
            sig,
            depth,
            area_flow,
        });
    }

    /// Closes the current node: every cut pushed since the previous
    /// close belongs to it.
    fn close_node(&mut self) {
        let prev_end = self.ranges.last().map_or(0, |&(s, c)| s + c);
        self.ranges
            .push((prev_end, self.cuts.len() as u32 - prev_end));
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SlotMeta {
    len: u16,
    sig: u64,
    depth: u32,
    area_flow: f64,
}

/// Bounded priority list of candidate cuts for one node — the pruning
/// that keeps k ≥ 8 enumeration bounded.
///
/// Produces exactly the same cuts, in the same order, as "collect every
/// merge, drop duplicates by first occurrence, stable-sort by (depth,
/// area flow, leaf count), truncate to `cap`", while never holding more
/// than `cap` live candidates: a new cut is inserted after every entry
/// whose key is ≤ its own, the overflow entry is evicted, and a cut
/// that would rank past the end is rejected outright. Duplicates of a
/// live entry are caught by signature + leaf comparison; a duplicate of
/// an evicted or rejected entry shares its key, which by then is never
/// below the tail's, so ordering alone rejects it.
#[derive(Debug, Default)]
struct CandList {
    k: usize,
    cap: usize,
    /// `cap + 1` slots of `k` leaves each: the live entries plus one
    /// spare that the next merge lands in — insertion and eviction swap
    /// slot ids, never leaves.
    slots: Vec<u32>,
    metas: Vec<SlotMeta>,
    /// Live slot ids, best key first.
    order: Vec<u32>,
    /// The slot the next candidate is merged into.
    spare: u32,
    /// Next never-yet-used slot id while the list is filling up.
    next_fresh: u32,
}

impl CandList {
    fn configure(&mut self, k: usize, cap: usize) {
        self.k = k;
        self.cap = cap;
        self.slots.clear();
        self.slots.resize((cap + 1) * k, 0);
        self.metas.clear();
        self.metas.resize(cap + 1, SlotMeta::default());
        self.begin_node();
    }

    fn begin_node(&mut self) {
        self.order.clear();
        self.spare = 0;
        self.next_fresh = 1;
    }

    fn spare_slot_mut(&mut self) -> &mut [u32] {
        let s = self.spare as usize * self.k;
        &mut self.slots[s..s + self.k]
    }

    fn spare_leaves(&self, len: usize) -> &[u32] {
        let s = self.spare as usize * self.k;
        &self.slots[s..s + len]
    }

    fn slot_leaves(&self, slot: u32) -> &[u32] {
        let s = slot as usize * self.k;
        &self.slots[s..s + self.metas[slot as usize].len as usize]
    }

    /// Offers the candidate sitting in the spare slot to the list.
    fn try_insert(&mut self, len: usize, sig: u64, depth: u32, area_flow: f64) {
        use std::cmp::Ordering;
        // Dedup against the live entries. A duplicate must be a mutual
        // subset, so either direction of the signature domination check
        // refutes most non-duplicates without touching leaves.
        for &id in &self.order {
            let m = self.metas[id as usize];
            if sig_refutes_subset(sig, m.sig) || sig_refutes_subset(m.sig, sig) {
                continue;
            }
            if m.len as usize == len && self.slot_leaves(id) == self.spare_leaves(len) {
                return;
            }
        }
        // Stable position: after every entry whose key is ≤ ours.
        let mut pos = self.order.len();
        while pos > 0 {
            let m = self.metas[self.order[pos - 1] as usize];
            let above = m
                .depth
                .cmp(&depth)
                .then(m.area_flow.partial_cmp(&area_flow).unwrap())
                .then((m.len as usize).cmp(&len))
                == Ordering::Greater;
            if !above {
                break;
            }
            pos -= 1;
        }
        if pos == self.cap {
            return;
        }
        self.metas[self.spare as usize] = SlotMeta {
            len: len as u16,
            sig,
            depth,
            area_flow,
        };
        if self.order.len() == self.cap {
            let evicted = self.order.pop().expect("cap >= 1");
            self.order.insert(pos, self.spare);
            self.spare = evicted;
        } else {
            self.order.insert(pos, self.spare);
            self.spare = self.next_fresh;
            self.next_fresh += 1;
        }
    }

    fn best_depth(&self) -> Option<u32> {
        self.order.first().map(|&id| self.metas[id as usize].depth)
    }

    /// Depth of the worst live entry once the list is full. While there
    /// is still room nothing can be rejected on depth alone, so `None`.
    /// A candidate strictly deeper than this ranks past the end and
    /// [`CandList::try_insert`] would reject it — callers can skip the
    /// merge work outright (a duplicate of a live entry is never that
    /// deep: it shares the live entry's key, which is at most the
    /// tail's).
    fn tail_depth(&self) -> Option<u32> {
        (self.order.len() == self.cap)
            .then(|| self.metas[*self.order.last().expect("cap >= 1") as usize].depth)
    }

    fn min_area_flow(&self) -> f64 {
        self.order
            .iter()
            .map(|&id| self.metas[id as usize].area_flow)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Epoch-stamped memo for cone evaluation: one [`Truth`] slot and one
/// stamp per node; an entry is valid only when its stamp equals the
/// current epoch, so bumping the epoch invalidates the whole memo in
/// O(1) — no per-cone `HashMap`, no clearing between cones.
#[derive(Debug, Default)]
struct ConeMemo {
    values: Vec<Truth>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ConeMemo {
    fn begin(&mut self, nodes: usize) {
        if self.stamp.len() < nodes {
            self.stamp.resize(nodes, 0);
            self.values.resize(nodes, Truth::ZERO);
        }
        if self.epoch == u32::MAX {
            // One full wipe every 2^32 cones keeps stamps sound across
            // epoch wrap-around.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    fn get(&self, idx: usize) -> Option<Truth> {
        (self.stamp[idx] == self.epoch).then(|| self.values[idx])
    }

    fn set(&mut self, idx: usize, v: Truth) {
        self.stamp[idx] = self.epoch;
        self.values[idx] = v;
    }
}

/// Reusable scratch memory for [`map_to_luts_in`]: the arena cut store,
/// the bounded candidate list, the epoch-stamped cone memo and the
/// selection work arrays.
///
/// One scratch serves any number of mappings — any netlist, any
/// options — with no allocation beyond high-water growth, and the
/// result is bit-identical to mapping with a fresh scratch.
#[derive(Debug, Default)]
pub struct MapScratch {
    store: CutStore,
    cands: CandList,
    cone: ConeMemo,
    labels: Vec<u32>,
    areas: Vec<f64>,
    required: Vec<u32>,
    needed: Vec<bool>,
    chosen: Vec<u32>,
    lut_of: Vec<u32>,
}

impl MapScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Maps a gate netlist to k-input LUTs.
///
/// Returns a [`LutNetlist`] with the same interface (input order and
/// output names). Every mapping should be re-verified with
/// [`verify_mapping`]; the flow does this automatically.
///
/// Convenience wrapper over [`map_to_luts_in`] that analyzes the
/// netlist and allocates fresh scratch; callers mapping repeatedly (the
/// pipeline, benches) should hold a [`MapScratch`] and a
/// [`NetAnalysis`] and call [`map_to_luts_in`] directly.
///
/// # Panics
///
/// Panics if `opts.k > MAX_LUT_INPUTS`.
pub fn map_to_luts(net: &Netlist, opts: &MapOptions) -> LutNetlist {
    map_to_luts_in(net, opts, &NetAnalysis::of(net), &mut MapScratch::new())
}

/// Maps a gate netlist to k-input LUTs using a precomputed
/// [`NetAnalysis`] and caller-owned [`MapScratch`].
///
/// # Panics
///
/// Panics if `opts.k > MAX_LUT_INPUTS` or if `analysis` was not
/// computed for `net`.
pub fn map_to_luts_in(
    net: &Netlist,
    opts: &MapOptions,
    analysis: &NetAnalysis,
    scratch: &mut MapScratch,
) -> LutNetlist {
    assert!(
        opts.k <= MAX_LUT_INPUTS,
        "truth tables limited to k <= {MAX_LUT_INPUTS}"
    );
    let n = net.len();
    assert_eq!(
        analysis.fanouts.len(),
        n,
        "analysis does not match the netlist"
    );
    let fanouts = &analysis.fanouts;
    let MapScratch {
        store,
        cands,
        cone,
        labels,
        areas,
        required,
        needed,
        chosen,
        lut_of,
    } = scratch;
    store.clear(n);
    cands.configure(opts.k, opts.cuts_per_node);
    labels.clear();
    labels.resize(n, 0);
    areas.clear();
    areas.resize(n, 0.0);

    // Phase 1: cut enumeration + depth labels + area flow, in topo order.
    for id in net.node_ids() {
        let idx = id.index();
        match net.gate(id) {
            Gate::Input(_) | Gate::Const(_) => {
                let trivial = [idx as u32];
                store.push_cut(&trivial, leaf_sig(&trivial), 0, 0.0);
                store.close_node();
            }
            Gate::And(a, b) | Gate::Xor(a, b) => {
                cands.begin_node();
                let child_range = |child: NodeId| -> (u32, u32) {
                    let (first, count) = store.ranges[child.index()];
                    let trivial_only = opts.mode == MapMode::FanoutPreserving
                        && fanouts[child.index()] > 1
                        && matches!(net.gate(child), Gate::And(_, _) | Gate::Xor(_, _));
                    if trivial_only {
                        (first + count - 1, 1)
                    } else {
                        (first, count)
                    }
                };
                let (fa, ca) = child_range(a);
                let (fb, cb) = child_range(b);
                // A child cut's deepest-leaf label is recoverable from
                // its stored depth (`depth - 1` for enumerated cuts,
                // the child's own label for its trivial cut), so the
                // merged cut's depth — `1 + max` over the leaf union —
                // is known before merging: the max over a union is the
                // max of the two maxes.
                let max_label = |m: &CutMeta, child: NodeId| -> u32 {
                    if m.depth == u32::MAX {
                        labels[child.index()]
                    } else {
                        m.depth.saturating_sub(1)
                    }
                };
                for ai in fa..fa + ca {
                    let ma = store.cuts[ai as usize];
                    let max_label_a = max_label(&ma, a);
                    for bi in fb..fb + cb {
                        let mb = store.cuts[bi as usize];
                        let sig = ma.sig | mb.sig;
                        if sig.count_ones() as usize > opts.k {
                            continue;
                        }
                        let depth = 1 + max_label_a.max(max_label(&mb, b));
                        if let Some(tail) = cands.tail_depth() {
                            if depth > tail {
                                continue;
                            }
                        }
                        let Some(len) = merge_leaves_into(
                            store.leaves_of(&ma),
                            store.leaves_of(&mb),
                            cands.spare_slot_mut(),
                        ) else {
                            continue;
                        };
                        let leaves = cands.spare_leaves(len);
                        let area_flow = (1.0
                            + leaves.iter().map(|&l| areas[l as usize]).sum::<f64>())
                            / (fanouts[idx].max(1) as f64);
                        cands.try_insert(len, sig, depth, area_flow);
                    }
                }
                let label = cands.best_depth().expect("gate has a cut");
                let area_flow = cands.min_area_flow();
                for &slot in &cands.order {
                    let m = cands.metas[slot as usize];
                    store.push_cut(cands.slot_leaves(slot), m.sig, m.depth, m.area_flow);
                }
                // Trivial cut last, for parents' merging; depth u32::MAX
                // keeps it unselectable as an implementation.
                let trivial = [idx as u32];
                store.push_cut(&trivial, leaf_sig(&trivial), u32::MAX, f64::INFINITY);
                store.close_node();
                labels[idx] = label;
                areas[idx] = area_flow;
            }
        }
    }

    // Phase 2: cut selection under required times, minimizing area flow.
    let global_depth = net
        .outputs()
        .iter()
        .map(|(_, o)| labels[o.index()])
        .max()
        .unwrap_or(0);
    required.clear();
    required.resize(n, u32::MAX);
    needed.clear();
    needed.resize(n, false);
    for (_, o) in net.outputs() {
        if matches!(net.gate(*o), Gate::And(_, _) | Gate::Xor(_, _)) {
            needed[o.index()] = true;
            required[o.index()] = required[o.index()].min(global_depth);
        }
    }
    chosen.clear();
    chosen.resize(n, u32::MAX);
    for idx in (0..n).rev() {
        if !needed[idx] {
            continue;
        }
        let req = required[idx];
        let (first, count) = store.ranges[idx];
        let cuts = &store.cuts[first as usize..(first + count) as usize];
        // Pick the min-area-flow cut meeting the required time; the
        // depth-best cut always does (label <= req by construction).
        let (best, _) = cuts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.depth <= req)
            .min_by(|(_, x), (_, y)| {
                x.area_flow
                    .partial_cmp(&y.area_flow)
                    .unwrap()
                    .then(x.depth.cmp(&y.depth))
            })
            .expect("at least the depth-optimal cut meets required time");
        chosen[idx] = best as u32;
        debug_assert!(cuts[best].depth <= req);
        for &leaf in store.leaves_of(&cuts[best]) {
            let li = leaf as usize;
            if matches!(net.gate(net.node_id(li)), Gate::And(_, _) | Gate::Xor(_, _)) {
                needed[li] = true;
                required[li] = required[li].min(req.saturating_sub(1));
            }
        }
    }

    // Phase 3: extraction + truth tables.
    let mut out = LutNetlist::new(net.name().to_string(), opts.k, net.input_names().to_vec());
    lut_of.clear();
    lut_of.resize(n, u32::MAX);
    for idx in 0..n {
        let ci = chosen[idx];
        if ci == u32::MAX {
            continue;
        }
        let (first, _) = store.ranges[idx];
        let m = store.cuts[(first + ci) as usize];
        let truth = cone_truth_memo(net, idx, store.leaves_of(&m), cone);
        let inputs: Vec<Signal> = store
            .leaves_of(&m)
            .iter()
            .map(|&l| signal_for(net, l as usize, lut_of))
            .collect();
        let id = out.push_lut(Lut { inputs, truth });
        lut_of[idx] = id;
    }
    for (name, o) in net.outputs() {
        out.push_output(name.clone(), signal_for(net, o.index(), lut_of));
    }
    out
}

fn signal_for(net: &Netlist, idx: usize, lut_of: &[u32]) -> Signal {
    if lut_of[idx] != u32::MAX {
        return Signal::Lut(lut_of[idx]);
    }
    match net.gate(net.node_id(idx)) {
        Gate::Input(i) => Signal::Input(i),
        Gate::Const(v) => Signal::Const(v),
        _ => panic!("gate node {idx} was not mapped"),
    }
}

/// The truth-table pattern of variable `v`: entry `idx` is set iff bit
/// `v` of `idx` is. Variables 0..6 repeat a classic single-word pattern
/// across all four words; variables 6 and 7 select whole words (bit 6
/// of `idx` is bit 0 of the word index, bit 7 is bit 1).
fn var_pattern(v: usize) -> Truth {
    const P6: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    match v {
        0..=5 => Truth([P6[v]; 4]),
        6 => Truth([0, u64::MAX, 0, u64::MAX]),
        7 => Truth([0, 0, u64::MAX, u64::MAX]),
        _ => panic!("variable {v} exceeds MAX_LUT_INPUTS"),
    }
}

/// Truth table of the cone rooted at `root` with the given leaves, over
/// ≤ [`MAX_LUT_INPUTS`] variables, memoized through `memo`'s current
/// epoch (which this bumps first).
fn cone_truth_memo(net: &Netlist, root: usize, leaves: &[u32], memo: &mut ConeMemo) -> Truth {
    memo.begin(net.len());
    for (v, &leaf) in leaves.iter().enumerate() {
        memo.set(leaf as usize, var_pattern(v));
    }
    fn eval(net: &Netlist, idx: usize, memo: &mut ConeMemo) -> Truth {
        if let Some(w) = memo.get(idx) {
            return w;
        }
        let w = match net.gate(net.node_id(idx)) {
            Gate::Const(false) => Truth::ZERO,
            Gate::Const(true) => Truth::ONES,
            Gate::Input(_) => panic!("input reached below a cut leaf"),
            Gate::And(a, b) => eval(net, a.index(), memo) & eval(net, b.index(), memo),
            Gate::Xor(a, b) => eval(net, a.index(), memo) ^ eval(net, b.index(), memo),
        };
        memo.set(idx, w);
        w
    }
    // Mask to the populated variable count.
    eval(net, root, memo).mask(leaves.len())
}

/// Re-verifies a mapping against its source netlist on `rounds × 64`
/// random patterns (deterministic seed). Returns `true` when equivalent.
/// All evaluation buffers are reused across rounds.
pub fn verify_mapping(net: &Netlist, mapped: &LutNetlist, rounds: usize, seed: u64) -> bool {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = Vec::with_capacity(net.num_inputs());
    let (mut net_vals, mut net_out) = (Vec::new(), Vec::new());
    let (mut lut_vals, mut lut_out) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        words.clear();
        words.extend((0..net.num_inputs()).map(|_| rng.gen::<u64>()));
        net.eval_words_into(&words, &mut net_vals, &mut net_out);
        mapped.eval_words_into(&words, &mut lut_vals, &mut lut_out);
        if net_out != lut_out {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Truth table of a cone with a fresh memo (tests only; the mapper
    /// itself reuses one memo across all cones).
    fn cone_truth(net: &Netlist, root: usize, leaves: &[u32]) -> Truth {
        cone_truth_memo(net, root, leaves, &mut ConeMemo::default())
    }

    fn merge(a: &[u32], b: &[u32], k: usize) -> Option<Vec<u32>> {
        let mut out = vec![0u32; k];
        merge_leaves_into(a, b, &mut out).map(|len| {
            out.truncate(len);
            out
        })
    }

    #[test]
    fn merge_respects_k() {
        assert_eq!(merge(&[1, 3], &[2, 3], 3), Some(vec![1, 2, 3]));
        assert_eq!(merge(&[1, 3], &[2, 4], 3), None);
        assert_eq!(merge(&[], &[5], 6), Some(vec![5]));
    }

    #[test]
    fn signatures_bound_unions_and_refute_subsets() {
        let a = [1u32, 3, 70];
        let b = [3u32, 6];
        let (sa, sb) = (leaf_sig(&a), leaf_sig(&b));
        // 70 aliases 6 (mod 64), so the union popcount (3) lower-bounds
        // the true union size (4) — never the other way around.
        assert_eq!((sa | sb).count_ones(), 3);
        assert!(leaf_sig(&[1, 3]) == leaf_sig(&[1, 3]));
        // b ⊄ a is refuted (bit 6 set in sb, absent only if aliased —
        // here 70 % 64 == 6 so it is NOT refuted), while a ⊄ b is.
        assert!(!sig_refutes_subset(sb, sa));
        assert!(sig_refutes_subset(sa, sb));
    }

    fn xor_tree(leaves: usize) -> Netlist {
        let mut net = Netlist::new("xt");
        let ins: Vec<_> = (0..leaves).map(|i| net.input(format!("x{i}"))).collect();
        let root = net.xor_balanced(&ins);
        net.output("y", root);
        net
    }

    #[test]
    fn xor3_fits_one_lut() {
        let net = xor_tree(3);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.num_luts(), 1);
        assert_eq!(mapped.depth(), 1);
        assert!(verify_mapping(&net, &mapped, 4, 1));
    }

    #[test]
    fn xor24_maps_to_two_levels() {
        // A binary-balanced 24-leaf tree has 4-leaf subtree boundaries at
        // level 2, so a depth-2 cover (6 LUTs of 4 + 1 root LUT) exists
        // structurally and the depth-oriented mapper must find it.
        let net = xor_tree(24);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.depth(), 2, "{mapped}");
        assert_eq!(mapped.num_luts(), 7, "{mapped}");
        assert!(verify_mapping(&net, &mapped, 8, 2));
    }

    #[test]
    fn xor36_structural_mapping_needs_three_levels() {
        // 36 leaves would fit 6×6 LUTs, but a *binary-balanced* tree has
        // no 6-leaf subtree boundaries; structural mapping (no
        // re-association) is stuck at depth 3. The resynthesis pass
        // (crate::resynth) exists precisely to fix this — mirroring what
        // the paper relies on XST to do for its flat Table IV forms.
        let net = xor_tree(36);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.depth(), 3, "{mapped}");
        assert!(verify_mapping(&net, &mapped, 8, 2));
    }

    #[test]
    fn free_mode_duplicates_shared_logic_for_depth() {
        // x = a^b feeds two outputs; with k=3 the free mapper absorbs x
        // into both cones (2 LUTs, depth 1); the fanout-preserving
        // mapper keeps x as a barrier (3 LUTs, depth 2).
        let mut net = Netlist::new("sh");
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let d = net.input("d");
        let x = net.xor(a, b);
        let y1 = net.xor(x, c);
        let y2 = net.xor(x, d);
        net.output("y1", y1);
        net.output("y2", y2);

        let free = map_to_luts(&net, &MapOptions::new().with_k(3));
        assert_eq!(free.depth(), 1);
        assert_eq!(free.num_luts(), 2);
        assert!(verify_mapping(&net, &free, 4, 3));

        let fp = map_to_luts(
            &net,
            &MapOptions::new()
                .with_k(3)
                .with_mode(MapMode::FanoutPreserving),
        );
        assert_eq!(fp.depth(), 2);
        assert_eq!(fp.num_luts(), 3);
        assert!(verify_mapping(&net, &fp, 4, 4));
    }

    #[test]
    fn maps_and_xor_mix() {
        let mut net = Netlist::new("m");
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let p = net.and(a, b);
        let q = net.and(b, c);
        let r = net.xor(p, q);
        let s = net.and(r, a);
        net.output("y", s);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.num_luts(), 1); // 3 inputs total — one LUT6
        assert!(verify_mapping(&net, &mapped, 8, 5));
    }

    #[test]
    fn passthrough_and_const_outputs() {
        let mut net = Netlist::new("p");
        let a = net.input("a");
        let t = net.constant(true);
        net.output("same", a);
        net.output("one", t);
        let mapped = map_to_luts(&net, &MapOptions::new());
        assert_eq!(mapped.num_luts(), 0);
        assert_eq!(
            mapped.outputs(),
            &[
                ("same".to_string(), Signal::Input(0)),
                ("one".to_string(), Signal::Const(true))
            ]
        );
    }

    #[test]
    fn cone_truth_of_xor2() {
        let mut net = Netlist::new("t");
        let a = net.input("a");
        let b = net.input("b");
        let x = net.xor(a, b);
        net.output("y", x);
        let truth = cone_truth(&net, x.index(), &[a.index() as u32, b.index() as u32]);
        assert_eq!(truth, Truth::of(0b0110));
    }

    #[test]
    fn cone_memo_reuse_never_leaks_between_cones() {
        // f = a & !b, built XOR/AND-only as a ^ (a & b): asymmetric in
        // (a, b), so any stale leaf seeding or value surviving from an
        // earlier evaluation flips the truth table.
        let mut net = Netlist::new("t");
        let a = net.input("a");
        let b = net.input("b");
        let p = net.and(a, b);
        let f = net.xor(a, p);
        net.output("y", f);
        let ab = [a.index() as u32, b.index() as u32];
        let ba = [b.index() as u32, a.index() as u32];
        let mut memo = ConeMemo::default();
        let t1 = cone_truth_memo(&net, f.index(), &ab, &mut memo);
        assert_eq!(t1, Truth::of(0b0010)); // set only where a=1, b=0
                                           // Same root, swapped variable assignment: must re-derive, not
                                           // reuse the epoch-stale values of the previous cone.
        let t2 = cone_truth_memo(&net, f.index(), &ba, &mut memo);
        assert_eq!(t2, Truth::of(0b0100));
        // A different cone over the same nodes, then the first again.
        assert_eq!(
            cone_truth_memo(&net, p.index(), &ab, &mut memo),
            Truth::of(0b1000)
        );
        assert_eq!(cone_truth_memo(&net, f.index(), &ab, &mut memo), t1);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh() {
        let mut shared = MapScratch::new();
        let configs = [
            (xor_tree(24), MapOptions::new()),
            (xor_tree(8), MapOptions::new().with_k(8)),
            (
                xor_tree(24),
                MapOptions::new().with_k(4).with_cuts_per_node(2),
            ),
            (
                xor_tree(12),
                MapOptions::new()
                    .with_k(3)
                    .with_mode(MapMode::FanoutPreserving),
            ),
        ];
        for (net, opts) in &configs {
            let with_shared = map_to_luts_in(net, opts, &NetAnalysis::of(net), &mut shared);
            let fresh = map_to_luts(net, opts);
            assert_eq!(with_shared.luts(), fresh.luts());
            assert_eq!(with_shared.outputs(), fresh.outputs());
        }
    }

    #[test]
    fn bounded_insertion_matches_collect_sort_truncate() {
        // Feed one deterministic candidate stream through the bounded
        // list and through the reference procedure the naive mapper
        // uses (collect, dedup by first occurrence, stable sort,
        // truncate); the kept cuts and their order must agree exactly.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (k, cap) = (4usize, 3usize);
        let mut rng = StdRng::seed_from_u64(9);
        let mut cands = CandList::default();
        cands.configure(k, cap);
        let mut reference: Vec<(Vec<u32>, u32, f64)> = Vec::new();
        for _ in 0..300 {
            let len = rng.gen_range(1..=k);
            let mut leaves: Vec<u32> = (0..len).map(|_| rng.gen_range(0..10u32)).collect();
            leaves.sort_unstable();
            leaves.dedup();
            // Keys must be functions of the leaves, as depth and area
            // flow are in the mapper.
            let depth = leaves.iter().map(|&l| l / 3).max().unwrap();
            let area_flow = leaves.iter().map(|&l| f64::from(l)).sum::<f64>() / 4.0;
            let spare = cands.spare_slot_mut();
            spare[..leaves.len()].copy_from_slice(&leaves);
            cands.try_insert(leaves.len(), leaf_sig(&leaves), depth, area_flow);
            if !reference.iter().any(|(l, _, _)| *l == leaves) {
                reference.push((leaves, depth, area_flow));
            }
        }
        reference.sort_by(|(la, da, aa), (lb, db, ab)| {
            da.cmp(db)
                .then(aa.partial_cmp(ab).unwrap())
                .then(la.len().cmp(&lb.len()))
        });
        reference.truncate(cap);
        let kept: Vec<(Vec<u32>, u32, f64)> = cands
            .order
            .iter()
            .map(|&id| {
                let m = cands.metas[id as usize];
                (cands.slot_leaves(id).to_vec(), m.depth, m.area_flow)
            })
            .collect();
        assert_eq!(kept, reference);
    }

    #[test]
    fn var_patterns_encode_index_bits() {
        for v in 0..MAX_LUT_INPUTS {
            let p = var_pattern(v);
            for idx in 0..(1usize << MAX_LUT_INPUTS) {
                assert_eq!(p.bit(idx), (idx >> v) & 1 == 1, "var {v}, entry {idx}");
            }
        }
    }

    #[test]
    fn xor8_fits_one_wide_lut() {
        // On a k=8 fabric an 8-input XOR is a single LUT; the truth
        // table lives in all four words and must still verify.
        let net = xor_tree(8);
        let mapped = map_to_luts(&net, &MapOptions::new().with_k(8));
        assert_eq!(mapped.num_luts(), 1, "{mapped}");
        assert_eq!(mapped.depth(), 1);
        assert!(verify_mapping(&net, &mapped, 8, 6));
    }

    #[test]
    fn narrow_k4_mapping_never_exceeds_four_inputs() {
        let net = xor_tree(24);
        let mapped = map_to_luts(&net, &MapOptions::new().with_k(4));
        assert!(mapped.luts().iter().all(|l| l.inputs.len() <= 4));
        assert!(verify_mapping(&net, &mapped, 8, 7));
    }

    #[test]
    fn default_cut_budget_narrows_for_wide_luts() {
        assert_eq!(MapOptions::default_cuts_for(4), 8);
        assert_eq!(MapOptions::default_cuts_for(6), 8);
        assert_eq!(MapOptions::default_cuts_for(8), 4);
    }
}
