//! Technology-independent resynthesis: XOR-cluster re-association.
//!
//! Structural LUT mapping cannot re-associate XOR trees, so the shape of
//! the input netlist's XOR network leaks straight into mapping quality
//! (see `map::tests::xor36_structural_mapping_needs_three_levels`).
//! Synthesis tools fix this by collapsing maximal single-fanout XOR
//! cones into n-ary XORs and re-decomposing them with the LUT capacity
//! in mind. This pass is our stand-in for that XST behaviour — the
//! "freedom to optimize the synthesis" the paper hands to the tool by
//! removing the parenthesised restrictions.
//!
//! Multi-fanout nodes are *cluster boundaries*: their logic is shared,
//! and replicating it is the mapper's decision, not the resynthesiser's.
//! This is exactly why the paper's flat Table IV netlists (no forced
//! shared pair nodes) resynthesize better than the parenthesised Table
//! III netlists of \[7\].
//!
//! The re-decomposition is *LUT-aware* on two axes:
//!
//! * **capacity** — leaves are greedily packed into groups whose total
//!   fresh-input demand fits one LUT (an AND product contributes two
//!   inputs, an already-mapped wire one);
//! * **depth** — groups are formed level by level on an estimated LUT
//!   depth, so shallow leaves combine first and deep leaves join near
//!   the root (the same-level discipline of the paper's \[7\], applied
//!   at LUT granularity instead of gate granularity).

use std::collections::HashMap;

use netlist::{analysis, Gate, Netlist, NodeId};

/// Rebalances every maximal single-fanout XOR cluster into a LUT-aware
/// decomposition for LUT width `k`.
///
/// AND gates, inputs, constants and multi-fanout XOR nodes are preserved
/// (modulo hash-consing); functionality is unchanged — the test-suite
/// re-verifies equivalence exhaustively on random netlists.
///
/// # Panics
///
/// Panics if `k < 2`.
///
/// # Examples
///
/// ```
/// use netlist::Netlist;
/// use rgf2m_fpga::resynth::rebalance_xors;
///
/// // A worst-case XOR chain...
/// let mut net = Netlist::new("chain");
/// let ins: Vec<_> = (0..36).map(|i| net.input(format!("x{i}"))).collect();
/// let root = net.xor_chain(&ins);
/// net.output("y", root);
/// assert_eq!(net.depth().xors, 35);
///
/// // ...rebalanced into a LUT-aware decomposition: logarithmic depth.
/// let balanced = rebalance_xors(&net, 6);
/// assert!(balanced.depth().xors <= 6);
/// ```
pub fn rebalance_xors(net: &Netlist, k: usize) -> Netlist {
    rebalance_xors_in(net, k, &analysis::NetAnalysis::of(net))
}

/// Like [`rebalance_xors`], using a precomputed [`analysis::NetAnalysis`]
/// of `net` — so a pipeline that already analyzed the netlist (fanouts
/// feed mapping too) does not walk the node array again here.
///
/// # Panics
///
/// Panics if `k < 2` or if `hints` was not computed for `net`.
pub fn rebalance_xors_in(net: &Netlist, k: usize, hints: &analysis::NetAnalysis) -> Netlist {
    assert!(k >= 2, "chunk width must be at least 2");
    assert_eq!(
        hints.fanouts.len(),
        net.len(),
        "analysis does not match the netlist"
    );
    let fanouts = &hints.fanouts;
    let mut out = Netlist::new(net.name().to_string());
    let mut remap: Vec<Option<NodeId>> = vec![None; net.len()];
    // Estimated LUT depth of every *new* XOR cluster root we create.
    let mut est: HashMap<NodeId, u32> = HashMap::new();

    // A node is interior if it is an XOR feeding exactly one XOR parent.
    let mut is_interior = vec![false; net.len()];
    for id in net.node_ids() {
        if let Gate::Xor(a, b) = net.gate(id) {
            for child in [a, b] {
                if matches!(net.gate(child), Gate::Xor(_, _)) && fanouts[child.index()] == 1 {
                    is_interior[child.index()] = true;
                }
            }
        }
    }

    for id in net.node_ids() {
        if is_interior[id.index()] {
            continue; // materialized inside its cluster root
        }
        let new_id = match net.gate(id) {
            Gate::Input(i) => out.input(net.input_names()[i as usize].clone()),
            Gate::Const(v) => out.constant(v),
            Gate::And(a, b) => {
                let (na, nb) = (resolve(&remap, a), resolve(&remap, b));
                out.and(na, nb)
            }
            Gate::Xor(_, _) => {
                let mut leaves = Vec::new();
                collect_cluster_leaves(net, id, &is_interior, &mut leaves);
                let mapped: Vec<NodeId> = leaves.iter().map(|&l| resolve(&remap, l)).collect();
                build_cluster(&mut out, &mapped, k, &mut est)
            }
        };
        remap[id.index()] = Some(new_id);
    }
    for (name, o) in net.outputs() {
        out.output(name.clone(), resolve(&remap, *o));
    }
    out
}

fn resolve(remap: &[Option<NodeId>], id: NodeId) -> NodeId {
    remap[id.index()].expect("operands resolved in topological order")
}

/// Collects the non-interior descendants reached through interior XORs.
fn collect_cluster_leaves(
    net: &Netlist,
    root: NodeId,
    is_interior: &[bool],
    leaves: &mut Vec<NodeId>,
) {
    let Gate::Xor(a, b) = net.gate(root) else {
        unreachable!("cluster roots are XOR gates");
    };
    for child in [a, b] {
        if is_interior[child.index()] {
            collect_cluster_leaves(net, child, is_interior, leaves);
        } else {
            leaves.push(child);
        }
    }
}

/// Fresh-input demand of a leaf when absorbed into a LUT: an AND product
/// brings both operands, a mapped wire or primary input brings itself.
fn leaf_width(out: &Netlist, n: NodeId) -> u32 {
    match out.gate(n) {
        Gate::And(_, _) => 2,
        Gate::Const(_) => 0,
        _ => 1,
    }
}

/// Estimated LUT depth of a leaf: 0 for inputs/constants/AND products
/// (absorbable into the consuming LUT), the recorded estimate for XOR
/// cluster roots built earlier.
fn leaf_est(out: &Netlist, n: NodeId, est: &HashMap<NodeId, u32>) -> u32 {
    match out.gate(n) {
        Gate::Xor(_, _) => est.get(&n).copied().unwrap_or(1),
        _ => 0,
    }
}

/// Builds one cluster: depth-synchronized, capacity-packed grouping.
fn build_cluster(
    out: &mut Netlist,
    leaves: &[NodeId],
    k: usize,
    est: &mut HashMap<NodeId, u32>,
) -> NodeId {
    if leaves.is_empty() {
        return out.constant(false);
    }
    use std::collections::BTreeMap;
    // Buckets: estimated LUT depth → nodes (kept in insertion order for
    // determinism).
    let mut buckets: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    let mut count = 0usize;
    for &l in leaves {
        buckets.entry(leaf_est(out, l, est)).or_default().push(l);
        count += 1;
    }
    while count > 1 {
        let (&d, _) = buckets.iter().next().expect("count > 1 implies nonempty");
        let nodes = buckets.remove(&d).expect("present");
        if nodes.len() == 1 && !buckets.is_empty() {
            // A lone shallow node rises for free: joining a deeper group
            // later costs no extra level.
            let (&next, _) = buckets.iter().next().expect("nonempty");
            buckets.entry(next).or_default().insert(0, nodes[0]);
            continue;
        }
        // Greedy capacity packing: groups whose total fresh-input demand
        // fits one k-LUT.
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut cur: Vec<NodeId> = Vec::new();
        let mut cur_w = 0u32;
        for n in nodes {
            let w = leaf_width(out, n).max(1);
            if !cur.is_empty() && cur_w + w > k as u32 {
                groups.push(std::mem::take(&mut cur));
                cur_w = 0;
            }
            cur_w += w;
            cur.push(n);
        }
        if !cur.is_empty() {
            groups.push(cur);
        }
        for g in groups {
            count -= g.len();
            let (node, delta) = if g.len() == 1 {
                (g[0], 0) // singleton group: no gate, no level
            } else {
                (out.xor_balanced(&g), 1)
            };
            let nd = d + delta;
            if matches!(out.gate(node), Gate::Xor(_, _)) {
                est.insert(node, nd);
            }
            buckets.entry(nd).or_default().push(node);
            count += 1;
        }
        // Guard against a pathological no-progress loop: if everything
        // sits in one bucket as singleton groups of width > k, pair them.
        if count > 1 && buckets.len() == 1 {
            let (&dd, v) = buckets.iter().next().expect("nonempty");
            if v.len() == count && v.iter().all(|&n| leaf_width(out, n).max(1) > k as u32 / 2) {
                let nodes = buckets.remove(&dd).expect("present");
                let mut next = Vec::new();
                for pair in nodes.chunks(2) {
                    let n = if pair.len() == 2 {
                        out.xor(pair[0], pair[1])
                    } else {
                        pair[0]
                    };
                    if matches!(out.gate(n), Gate::Xor(_, _)) {
                        est.insert(n, dd + 1);
                    }
                    next.push(n);
                }
                count = next.len();
                buckets.insert(dd + 1, next);
            }
        }
    }
    let (_, v) = buckets.into_iter().next().expect("one node left");
    v[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_to_luts, verify_mapping, MapOptions};
    use netlist::sim::check_equivalent_exhaustive;

    fn xor_chain_net(leaves: usize) -> Netlist {
        let mut net = Netlist::new("chain");
        let ins: Vec<_> = (0..leaves).map(|i| net.input(format!("x{i}"))).collect();
        let root = net.xor_chain(&ins);
        net.output("y", root);
        net
    }

    #[test]
    fn rebalanced_36_leaf_cluster_maps_to_depth_2() {
        let net = xor_chain_net(36);
        let re = rebalance_xors(&net, 6);
        let mapped = map_to_luts(&re, &MapOptions::new());
        assert_eq!(mapped.depth(), 2, "{mapped}");
        assert_eq!(mapped.num_luts(), 7, "{mapped}");
        assert!(verify_mapping(&re, &mapped, 8, 1));
    }

    #[test]
    fn product_leaves_pack_by_input_demand() {
        // XOR of 9 AND products = 18 inputs; 3 products fit one LUT6, so
        // the optimal cover is 3 + 1 LUTs at depth 2. Capacity-aware
        // grouping must make that reachable for the structural mapper.
        let mut net = Netlist::new("prods");
        let mut prods = Vec::new();
        for i in 0..9 {
            let a = net.input(format!("a{i}"));
            let b = net.input(format!("b{i}"));
            prods.push(net.and(a, b));
        }
        let root = net.xor_chain(&prods);
        net.output("y", root);
        let re = rebalance_xors(&net, 6);
        let mapped = map_to_luts(&re, &MapOptions::new());
        assert_eq!(mapped.depth(), 2, "{mapped}");
        assert_eq!(mapped.num_luts(), 4, "{mapped}");
        assert!(verify_mapping(&re, &mapped, 8, 7));
    }

    #[test]
    fn deep_leaves_join_near_the_root() {
        // One deep shared XOR subtree + many shallow inputs: the deep
        // leaf must not be buried under shallow groups.
        let mut net = Netlist::new("deep");
        let deep_ins: Vec<_> = (0..8).map(|i| net.input(format!("d{i}"))).collect();
        let deep1 = net.xor_balanced(&deep_ins);
        let deep2 = {
            // multi-fanout: boundary
            let extra = net.input("e");
            net.xor(deep1, extra)
        };
        let use2 = net.input("u");
        let side = net.xor(deep2, use2); // second fanout for deep2
        net.output("side", side);
        let shallow: Vec<_> = (0..10).map(|i| net.input(format!("s{i}"))).collect();
        let mut cluster = deep2;
        for s in shallow {
            cluster = net.xor(cluster, s);
        }
        net.output("y", cluster);
        let re = rebalance_xors(&net, 6);
        assert!(check_equivalent_exhaustive(&net, &re).is_equivalent());
        // Depth must not exceed the deep subtree's depth + a small
        // combination overhead.
        assert!(re.depth().xors <= net.depth().xors);
    }

    #[test]
    fn preserves_function_on_mixed_networks() {
        let mut net = Netlist::new("mix");
        let ins: Vec<_> = (0..10).map(|i| net.input(format!("x{i}"))).collect();
        let p1 = net.and(ins[0], ins[1]);
        let p2 = net.and(ins[2], ins[3]);
        let x1 = net.xor(p1, p2);
        let x2 = net.xor(x1, ins[4]);
        let x3 = net.xor(x2, ins[5]);
        let shared = net.xor(ins[6], ins[7]); // multi-fanout XOR
        let y1 = net.xor(x3, shared);
        let y2 = net.xor(shared, ins[8]);
        let y3 = net.and(y2, ins[9]);
        net.output("y1", y1);
        net.output("y3", y3);
        let re = rebalance_xors(&net, 6);
        assert!(check_equivalent_exhaustive(&net, &re).is_equivalent());
    }

    #[test]
    fn multi_fanout_xor_stays_shared() {
        let mut net = Netlist::new("shared");
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let d = net.input("d");
        let shared = net.xor(a, b);
        let y1 = net.xor(shared, c);
        let y2 = net.xor(shared, d);
        net.output("y1", y1);
        net.output("y2", y2);
        let re = rebalance_xors(&net, 6);
        // The shared node must still exist once: 3 XOR clusters → 3 XORs.
        assert_eq!(re.stats().xors, 3);
        assert!(check_equivalent_exhaustive(&net, &re).is_equivalent());
    }

    #[test]
    fn ands_are_untouched() {
        let mut net = Netlist::new("ands");
        let a = net.input("a");
        let b = net.input("b");
        let p = net.and(a, b);
        let q = net.and(p, a);
        net.output("y", q);
        let re = rebalance_xors(&net, 6);
        assert_eq!(re.stats().ands, 2);
        assert_eq!(re.stats().xors, 0);
        assert!(check_equivalent_exhaustive(&net, &re).is_equivalent());
    }

    #[test]
    fn idempotent_within_one_pass() {
        let net = xor_chain_net(20);
        let once = rebalance_xors(&net, 6);
        let twice = rebalance_xors(&once, 6);
        // A second pass may reshuffle but must not grow the network.
        assert!(twice.stats().xors <= once.stats().xors);
        assert!(twice.depth().xors <= once.depth().xors);
        assert!(check_equivalent_exhaustive(&net, &twice).is_equivalent());
    }

    #[test]
    fn chunk_of_two_is_plain_balancing() {
        let net = xor_chain_net(16);
        let re = rebalance_xors(&net, 2);
        assert!(re.depth().xors <= 5);
        assert!(check_equivalent_exhaustive(&net, &re).is_equivalent());
    }

    #[test]
    #[should_panic(expected = "chunk width")]
    fn rejects_chunk_one() {
        let _ = rebalance_xors(&xor_chain_net(4), 1);
    }
}
