//! Property and acceptance tests for the STA subsystem and the static
//! depth certificate: on every Method × Target pair the backward
//! required-time pass must agree with the forward arrival pass (all
//! slacks non-negative at the default target, critical endpoints at
//! exactly zero), traced paths must decompose their endpoint's
//! arrival, and the paper's largest field (163, 68) must meet the
//! Table V depth formula of every method on every fabric — while a
//! deliberately chained (unbalanced) build of the same function is
//! refused with the offending output bit named.

use gf2m::Field;
use gf2poly::TypeIiPentanomial;
use netlist::Netlist;
use proptest::prelude::*;
use rgf2m_core::{coefficient_support, delay_spec, generate, Method};
use rgf2m_fpga::{analyze_sta, FlowError, Pipeline, StaOptions, Target};

fn field_for(m: usize, n: usize) -> Field {
    Field::from_pentanomial(&TypeIiPentanomial::new(m, n).unwrap())
}

fn arb_target() -> impl Strategy<Value = Target> {
    (0usize..Target::ALL.len()).prop_map(|i| Target::ALL[i])
}

fn arb_method() -> impl Strategy<Value = Method> {
    (0usize..Method::ALL.len()).prop_map(|i| Method::ALL[i])
}

/// Slack comparisons tolerate accumulated float noise, nothing more.
const EPS: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At the default target (the design's own critical delay) the
    /// forward and backward passes must agree: every per-LUT and
    /// per-endpoint slack is non-negative, the worst endpoint slack is
    /// exactly zero, and the worst slack anywhere rounds to zero.
    #[test]
    fn slack_is_consistent_on_every_method_and_target(
        target in arb_target(),
        method in arb_method(),
    ) {
        let field = field_for(8, 2);
        let net = generate(&field, method);
        let artifacts = Pipeline::new()
            .with_target(target)
            .run(&net)
            .expect("clean flow");
        let sta = &artifacts.timing;

        for (l, &s) in sta.slack_ns.iter().enumerate() {
            prop_assert!(s >= -EPS, "{target}/{method:?}: LUT {l} slack {s}");
        }
        for (k, &s) in sta.output_slack_ns.iter().enumerate() {
            prop_assert!(s >= -EPS, "{target}/{method:?}: output {k} slack {s}");
        }
        prop_assert!(sta.worst_slack_ns.abs() < EPS,
            "{target}/{method:?}: worst slack {}", sta.worst_slack_ns);

        // Arrival and required agree on the critical delay: the worst
        // endpoint arrival IS the resolved target, so its slack is 0.
        prop_assert_eq!(sta.target_ns, sta.critical_ns);
        let worst_endpoint = sta
            .output_slack_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        prop_assert!(worst_endpoint.abs() < EPS,
            "{target}/{method:?}: critical endpoint slack {worst_endpoint}");

        // The report mirrors the STA verbatim.
        prop_assert_eq!(artifacts.report.worst_slack_ns, sta.worst_slack_ns);
        prop_assert_eq!(artifacts.report.time_ns, sta.critical_ns);
    }

    /// Path enumeration is exact: the worst trace terminates at the
    /// critical output with slack ~0, every trace's segments sum to its
    /// endpoint arrival, and the histogram covers every slack once.
    #[test]
    fn traced_paths_decompose_arrivals(
        target in arb_target(),
        method in arb_method(),
    ) {
        let field = field_for(8, 2);
        let net = generate(&field, method);
        let artifacts = Pipeline::new()
            .with_target(target)
            .run(&net)
            .expect("clean flow");
        let sta = &artifacts.timing;

        prop_assert!(!sta.paths.is_empty());
        let worst = &sta.paths[0];
        prop_assert!((worst.arrival_ns - sta.critical_ns).abs() < EPS);
        prop_assert!(worst.slack_ns.abs() < EPS);
        prop_assert!(sta.critical_outputs.contains(&worst.output));
        prop_assert_eq!(&sta.critical_outputs[0], &sta.critical_output);

        for path in &sta.paths {
            let sum: f64 = path.segments.iter().map(|s| s.delay_ns).sum();
            prop_assert!((sum - path.arrival_ns).abs() < 1e-6,
                "{target}/{method:?}: path to {} sums to {sum}, arrival {}",
                path.output, path.arrival_ns);
        }

        prop_assert_eq!(
            sta.histogram.total(),
            artifacts.mapped.num_luts() + artifacts.mapped.outputs().len()
        );
    }

    /// An explicit required time shifts every slack rigidly: tightening
    /// the target by `d` lowers the worst slack by exactly `d`, so a
    /// target below the critical delay must go negative.
    #[test]
    fn explicit_targets_shift_slack_rigidly(
        target in arb_target(),
        method in arb_method(),
        tighten in 0.25f64..4.0,
    ) {
        let field = field_for(8, 2);
        let net = generate(&field, method);
        let pipeline = Pipeline::new().with_target(target);
        let artifacts = pipeline.run(&net).expect("clean flow");
        let tightened = analyze_sta(
            &artifacts.mapped,
            &artifacts.packing,
            &artifacts.placement,
            pipeline.device(),
            &StaOptions {
                target_ns: Some(artifacts.timing.critical_ns - tighten),
                ..StaOptions::default()
            },
        );
        prop_assert!((tightened.worst_slack_ns + tighten).abs() < 1e-6,
            "{target}/{method:?}: worst slack {} after tightening by {tighten}",
            tightened.worst_slack_ns);
        prop_assert!(tightened.worst_slack_ns < 0.0);
    }
}

/// The paper's largest field (163, 68): every method's generated
/// netlist meets its own Table V depth formula, certified by
/// [`Pipeline::verify_depth`] on every registered fabric. This is the
/// machine-checked version of the paper's `T_A + nT_X` delay rows.
#[test]
fn gf2_163_meets_table_v_depth_formula_on_every_target() {
    let field = field_for(163, 68);
    for method in Method::ALL {
        let net = generate(&field, method);
        let spec = delay_spec(&field, method);
        for target in Target::ALL {
            let pipeline = Pipeline::new().with_target(target);
            pipeline
                .verify_depth(&spec, &net)
                .unwrap_or_else(|e| panic!("{method:?} on {target:?}: {e}"));
        }
    }
}

/// A deliberately degraded build of the same multiplier — every output
/// coefficient accumulated through a *chained* XOR instead of a
/// balanced tree — must be refused by the depth certificate, naming
/// the first output bit whose cone exceeds the formula.
#[test]
fn chained_xor_regression_is_caught_as_depth_exceeded() {
    let field = field_for(8, 2);
    let m = field.m();
    let mut net = Netlist::new("chained");
    let a: Vec<_> = (0..m).map(|i| net.input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..m).map(|i| net.input(format!("b{i}"))).collect();
    let mut supports = Vec::new();
    for k in 0..m {
        let support = coefficient_support(&field, k);
        let products: Vec<_> = support.iter().map(|&(i, j)| net.and(a[i], b[j])).collect();
        let root = net.xor_chain(&products);
        net.output(format!("c{k}"), root);
        supports.push(support.len());
    }

    // Rashidi's formula is the balanced tree over exactly these
    // products, so the chained build busts it at the first output
    // whose chain is deeper than the balanced optimum.
    let spec = delay_spec(&field, Method::Rashidi);
    let expected_bit = supports
        .iter()
        .position(|&n| (n as u32).saturating_sub(1) > (usize::BITS - (n - 1).leading_zeros()))
        .expect("GF(2^8) has a coefficient with \u{2265} 4 products");

    match Pipeline::new().verify_depth(&spec, &net) {
        Err(FlowError::DepthExceeded {
            design,
            output_bit,
            got,
            bound,
        }) => {
            assert_eq!(design, "chained");
            assert_eq!(output_bit, expected_bit);
            assert!(got.xors > bound.xors, "got {got}, bound {bound}");
            assert_eq!(got.ands, bound.ands);
        }
        other => panic!("expected DepthExceeded, got {other:?}"),
    }
}
