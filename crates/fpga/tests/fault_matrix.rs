//! Fault-injection matrix: single-truth-bit faults across every
//! Method × Target at GF(2^8), with exhaustive ground truth.
//!
//! For each of the six generators on each of the four fabrics, one
//! truth-table bit is flipped in every LUT of the mapped netlist (via
//! [`LutNetlist::set_truth`]). Ground truth comes from exhaustive
//! simulation over all 2^16 operand pairs: a fault either changes the
//! computed function or is *masked* (the flipped minterm is
//! unreachable from the primary inputs). The matrix then checks that
//! [`Pipeline::verify_formal_mapped`] agrees with ground truth on
//! every single fault — zero escapes, zero false alarms — which is
//! exactly the completeness claim sampling cannot make.
//!
//! For contrast, each function-changing fault is also run through the
//! default sampled verify (4 rounds × 64 lanes = 256 of the 65 536
//! operand pairs, seed [`DEFAULT_VERIFY_SEED`]). Faults near the
//! primary outputs disturb many minterms and are easy to sample, but
//! faults deep in shared logic can surface on only a few operand
//! pairs: in the release run pinned here, the sampled check missed 39
//! of 1068 function-changing faults (a measured ~3.7% escape rate),
//! while the formal check caught all 1068 with the one masked fault
//! correctly left alone.

use gf2m::Field;
use gf2poly::TypeIiPentanomial;
use rgf2m_core::{generate, multiplier_spec, Method};
use rgf2m_fpga::{LutNetlist, Pipeline, Target, DEFAULT_VERIFY_SEED};

fn gf256() -> Field {
    Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap())
}

/// The 64-lane words enumerating assignments `batch*64 .. batch*64+63`
/// of `num_inputs` boolean inputs (inputs 0–5 vary within the word,
/// the rest select the batch).
fn exhaustive_words(batch: usize, num_inputs: usize) -> Vec<u64> {
    const LANES: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    (0..num_inputs)
        .map(|i| {
            if i < 6 {
                LANES[i]
            } else if (batch >> (i - 6)) & 1 == 1 {
                !0u64
            } else {
                0u64
            }
        })
        .collect()
}

/// All outputs of `mapped` over every assignment of its 16 inputs,
/// batch-major (1024 batches of 64 lanes).
fn exhaustive_outputs(mapped: &LutNetlist) -> Vec<Vec<u64>> {
    let n = mapped.input_names().len();
    assert_eq!(n, 16, "matrix is pinned to GF(2^8): 16 primary inputs");
    let (mut vals, mut out) = (Vec::new(), Vec::new());
    (0..1usize << (n - 6))
        .map(|batch| {
            mapped.eval_words_into(&exhaustive_words(batch, n), &mut vals, &mut out);
            out.clone()
        })
        .collect()
}

struct MatrixCell {
    faults: usize,
    function_changing: usize,
    masked: usize,
    formal_escapes: usize,
    formal_false_alarms: usize,
    sampled_misses: usize,
}

/// Injects one fault per LUT of one design on one target and scores
/// every verifier against exhaustive ground truth.
fn run_cell(method: Method, target: Target) -> MatrixCell {
    let field = gf256();
    let spec = multiplier_spec(&field);
    let net = generate(&field, method);
    let pipeline = Pipeline::new().with_target(target);
    assert_eq!(pipeline.verify_seed(), DEFAULT_VERIFY_SEED);
    let mut artifacts = pipeline.run(&net).expect("clean flow");
    let golden = exhaustive_outputs(&artifacts.mapped);
    assert!(pipeline
        .verify_formal_mapped(&spec, &artifacts.mapped)
        .is_ok());

    let mut cell = MatrixCell {
        faults: 0,
        function_changing: 0,
        masked: 0,
        formal_escapes: 0,
        formal_false_alarms: 0,
        sampled_misses: 0,
    };
    let num_luts = artifacts.mapped.num_luts();
    for i in 0..num_luts {
        // Flip one in-range truth bit per LUT (which bit varies by
        // LUT index, so the faults are not all in the same minterm).
        let lut = &artifacts.mapped.luts()[i];
        let bit = i % (1usize << lut.inputs.len());
        let mut faulty = lut.truth;
        faulty.0[bit / 64] ^= 1u64 << (bit % 64);
        let pristine = artifacts.mapped.luts()[i].truth;
        artifacts.mapped.set_truth(i as u32, faulty);
        cell.faults += 1;

        let changes = exhaustive_outputs(&artifacts.mapped) != golden;
        let formal_rejects = pipeline
            .verify_formal_mapped(&spec, &artifacts.mapped)
            .is_err();
        if changes {
            cell.function_changing += 1;
            if !formal_rejects {
                cell.formal_escapes += 1;
            }
            if pipeline.verify(&net, &artifacts.mapped).is_ok() {
                cell.sampled_misses += 1;
            }
        } else {
            cell.masked += 1;
            if formal_rejects {
                cell.formal_false_alarms += 1;
            }
        }

        artifacts.mapped.set_truth(i as u32, pristine);
    }
    // The repaired netlist must verify again (the matrix is side-effect
    // free).
    assert!(pipeline
        .verify_formal_mapped(&spec, &artifacts.mapped)
        .is_ok());
    cell
}

/// One cell of the matrix, cheap enough for every debug test run.
#[test]
fn fault_injection_proposed_on_artix7() {
    let cell = run_cell(Method::ProposedFlat, Target::Artix7);
    assert!(cell.faults > 0);
    assert!(cell.function_changing > 0, "every fault was masked?");
    assert_eq!(cell.formal_escapes, 0, "formal verify missed a real fault");
    assert_eq!(
        cell.formal_false_alarms, 0,
        "formal verify flagged a masked fault"
    );
}

/// The full 6 × 4 matrix (~1000 faults, each scored exhaustively);
/// release-only. Also pins the headline contrast: the formal check
/// catches 100% of function-changing faults, the default 4-round
/// sampled check demonstrably does not.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn fault_matrix_formal_catches_every_fault_sampling_misses_some() {
    let mut faults = 0usize;
    let mut changing = 0usize;
    let mut masked = 0usize;
    let mut sampled_misses = 0usize;
    for method in Method::ALL {
        for target in Target::ALL {
            let cell = run_cell(method, target);
            assert_eq!(
                cell.formal_escapes, 0,
                "{method:?} on {target:?}: formal verify missed a fault"
            );
            assert_eq!(
                cell.formal_false_alarms, 0,
                "{method:?} on {target:?}: formal verify flagged a masked fault"
            );
            faults += cell.faults;
            changing += cell.function_changing;
            masked += cell.masked;
            sampled_misses += cell.sampled_misses;
        }
    }
    println!(
        "fault matrix: {faults} faults, {changing} function-changing, {masked} masked; \
         formal caught all {changing}, sampled verify missed {sampled_misses}"
    );
    assert!(changing > 0);
    assert!(
        sampled_misses >= 1,
        "sampling caught everything — the formal pass would be pointless"
    );
}
