//! Property tests for the target registry: for *every* registered
//! fabric and *every* Table V method, technology mapping must respect
//! the fabric's LUT width and the mapped netlist must still multiply.

use gf2m::Field;
use gf2poly::TypeIiPentanomial;
use proptest::prelude::*;
use rgf2m_core::{generate, Method};
use rgf2m_fpga::map::map_to_luts;
use rgf2m_fpga::{Pipeline, Target};

fn gf256() -> Field {
    Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap())
}

fn arb_target() -> impl Strategy<Value = Target> {
    (0usize..Target::ALL.len()).prop_map(|i| Target::ALL[i])
}

fn arb_method() -> impl Strategy<Value = Method> {
    (0usize..Method::ALL.len()).prop_map(|i| Method::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mapping never emits a LUT wider than the target's `lut_inputs`,
    /// resynthesis on or off, and the pipeline's own re-verification
    /// passes — i.e. the mapped netlist still computes the GF(2^8)
    /// product.
    #[test]
    fn mapping_respects_every_targets_lut_width(
        target in arb_target(),
        method in arb_method(),
        resynth in any::<bool>(),
    ) {
        let field = gf256();
        let net = generate(&field, method);
        let pipeline = Pipeline::new()
            .with_target(target)
            .with_resynthesis(resynth);
        let synth = pipeline.resynth(&net).expect("valid configuration");
        let mapped = pipeline.map(&synth).expect("valid configuration");
        let k = target.lut_inputs();
        for (i, lut) in mapped.luts().iter().enumerate() {
            prop_assert!(
                lut.inputs.len() <= k,
                "{target}/{method:?}: LUT {i} has {} inputs > k = {k}",
                lut.inputs.len()
            );
        }
        prop_assert!(pipeline.verify(&net, &mapped).is_ok(),
            "{target}/{method:?}: mapped netlist no longer multiplies");
    }

    /// The full flow on a random target stays internally consistent:
    /// packing never exceeds the fabric's slice capacity and the
    /// report agrees with the artifacts.
    #[test]
    fn full_flow_is_consistent_on_every_target(
        target in arb_target(),
        method in arb_method(),
    ) {
        let field = gf256();
        let net = generate(&field, method);
        let artifacts = Pipeline::new()
            .with_target(target)
            .run(&net)
            .expect("clean flow");
        let per_slice = target.luts_per_slice();
        prop_assert!(artifacts.report.slices >= artifacts.report.luts.div_ceil(per_slice));
        prop_assert_eq!(artifacts.report.luts, artifacts.mapped.num_luts());
        prop_assert_eq!(artifacts.report.slices, artifacts.packing.num_slices());
        prop_assert!(artifacts.report.time_ns > 0.0);
    }
}

proptest! {
    // Each case walks the whole Target × Method grid (24 mappings), so a
    // few stimulus rounds already exercise every combination — keep the
    // case count small to stay debug-build friendly.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The arena/priority-cut mapper is functionally equivalent to raw
    /// netlist simulation on *every* registered fabric × *every* Table V
    /// method (the grid is walked exhaustively; proptest supplies the
    /// stimulus): the same random 64-bit words pushed through the gate
    /// netlist and through the mapped LUT netlist must agree on every
    /// output bit.
    #[test]
    fn mapper_matches_netlist_simulation_for_every_target_and_method(
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let field = gf256();
        let mut rng = StdRng::seed_from_u64(seed);
        for target in Target::ALL {
            for method in Method::ALL {
                let net = generate(&field, method);
                let mapped = map_to_luts(&net, &target.map_options());
                let words: Vec<u64> =
                    (0..net.num_inputs()).map(|_| rng.gen()).collect();
                let net_out = net.eval_words(&words);
                let lut_out = mapped.eval_words(&words);
                prop_assert!(
                    net_out == lut_out,
                    "{target}/{method:?} diverges from netlist simulation"
                );
            }
        }
    }
}
