//! Formal-verification coverage of the catalogued fields: the
//! algebraic certificate must accept every generated multiplier and
//! reject every corrupted spec, and the reverse-engineering pass must
//! recover each catalogued modulus from structure alone.
//!
//! Debug runs sample the grid with proptest on the small fields; the
//! release-gated tests walk *every* catalogued field (m ≤ 163) times
//! every method, and push the paper's largest field (163, 68) through
//! resynthesis + mapping on all four fabrics with the LUT-level
//! certificate ([`Pipeline::verify_formal_mapped`]) at the end.

use gf2m::Field;
use gf2poly::catalogue::TABLE_V_FIELDS;
use gf2poly::TypeIiPentanomial;
use netlist::{MulSpec, Poly};
use proptest::prelude::*;
use rgf2m_core::{anonymize, generate, multiplier_spec, reverse_engineer, Method};
use rgf2m_fpga::{FlowError, Pipeline, Target};

fn field_for(m: usize, n: usize) -> Field {
    Field::from_pentanomial(&TypeIiPentanomial::new(m, n).unwrap())
}

/// A spec with one monomial added to one output — the smallest
/// possible wrongness.
fn corrupt_spec(spec: &MulSpec, bit: usize) -> MulSpec {
    let outputs: Vec<Poly> = (0..spec.m())
        .map(|k| {
            let p = spec.output(k).clone();
            if k == bit {
                p.add(&Poly::one())
            } else {
                p
            }
        })
        .collect();
    MulSpec::new(spec.m(), outputs)
}

fn arb_method() -> impl Strategy<Value = Method> {
    (0usize..Method::ALL.len()).prop_map(|i| Method::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On the small catalogued fields, every method's netlist carries
    /// the complete algebraic certificate, any corrupted spec is
    /// refused at exactly the corrupted bit, and the anonymized
    /// netlist still betrays its modulus.
    #[test]
    fn formal_certificate_and_recovery_on_small_fields(
        fi in 0usize..2, // (8,2) and (64,23); release tests walk all 9
        method in arb_method(),
        bit_seed in any::<u16>(),
    ) {
        let (m, n) = TABLE_V_FIELDS[fi];
        let field = field_for(m, n);
        let spec = multiplier_spec(&field);
        let net = generate(&field, method);
        let pipeline = Pipeline::new();

        prop_assert!(pipeline.verify_formal(&spec, &net).is_ok(),
            "({m},{n}) {method:?}: formal certificate refused a correct netlist");

        let bit = bit_seed as usize % m;
        match pipeline.verify_formal(&corrupt_spec(&spec, bit), &net) {
            Err(FlowError::FormalMismatch { output_bit, .. }) => {
                prop_assert_eq!(output_bit, bit);
            }
            other => prop_assert!(false, "corrupted spec not refused: {other:?}"),
        }

        let rec = reverse_engineer(&anonymize(&net)).expect("recovery");
        prop_assert_eq!(rec.m, m);
        prop_assert_eq!(&rec.modulus, field.modulus());
    }
}

/// Every catalogued Table V field × every method: the gate-level
/// netlist passes complete algebraic verification and the anonymized
/// netlist's modulus is recovered exactly. Release-only (the m = 163
/// cones are large).
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn every_catalogued_field_verifies_formally_and_reveng_recovers() {
    for &(m, n) in &TABLE_V_FIELDS {
        let field = field_for(m, n);
        let spec = multiplier_spec(&field);
        let pipeline = Pipeline::new();
        for method in Method::ALL {
            let net = generate(&field, method);
            pipeline
                .verify_formal(&spec, &net)
                .unwrap_or_else(|e| panic!("({m},{n}) {method:?}: {e}"));
            let rec = reverse_engineer(&anonymize(&net))
                .unwrap_or_else(|e| panic!("({m},{n}) {method:?}: {e}"));
            assert_eq!(rec.m, m, "({m},{n}) {method:?}");
            assert_eq!(&rec.modulus, field.modulus(), "({m},{n}) {method:?}");
        }
    }
}

/// The paper's largest field (163, 68), every method, every fabric:
/// resynthesize, map, then demand the LUT-level algebraic certificate.
/// This is the acceptance gate the sampled verifier could never give.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn gf2_163_maps_with_formal_certificate_on_every_target() {
    let field = field_for(163, 68);
    let spec = multiplier_spec(&field);
    for method in Method::ALL {
        let net = generate(&field, method);
        for target in Target::ALL {
            let pipeline = Pipeline::new().with_target(target);
            let synth = pipeline.resynth(&net).expect("valid configuration");
            let mapped = pipeline.map(&synth).expect("valid configuration");
            pipeline
                .verify_formal_mapped(&spec, &mapped)
                .unwrap_or_else(|e| panic!("{method:?} on {target:?}: {e}"));
        }
    }
}
