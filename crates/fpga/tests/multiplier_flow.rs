//! End-to-end flow tests on real GF(2^m) multiplier netlists.

use gf2m::Field;
use gf2poly::TypeIiPentanomial;
use rgf2m_core::{generate, Method};
use rgf2m_fpga::map::MapMode;
use rgf2m_fpga::{MapOptions, Pipeline, Target};

fn gf256() -> Field {
    Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap())
}

#[test]
fn gf256_multipliers_map_pack_place_and_time() {
    let field = gf256();
    for method in Method::ALL {
        let net = generate(&field, method);
        let artifacts = Pipeline::new().run(&net).expect("clean flow");
        let r = &artifacts.report;
        // Sanity envelopes around the paper's (8,2) row (33–40 LUTs).
        assert!(
            (20..=60).contains(&r.luts),
            "{method:?}: {} LUTs out of envelope",
            r.luts
        );
        assert!(r.slices <= r.luts);
        assert!(
            r.slices >= r.luts.div_ceil(4),
            "{method:?} packing too dense"
        );
        assert!(
            (2..=5).contains(&r.depth),
            "{method:?}: LUT depth {} out of envelope",
            r.depth
        );
        assert!(
            (5.0..=20.0).contains(&r.time_ns),
            "{method:?}: {}ns out of envelope",
            r.time_ns
        );
        // The mapped netlist must still multiply: verified inside the
        // flow, but double-check against the field oracle end to end.
        let oracle_out = field.mul_words(&test_words(16));
        let lut_out = artifacts.mapped.eval_words(&test_words(16));
        assert_eq!(oracle_out, lut_out, "{method:?}");
    }
}

fn test_words(n: usize) -> Vec<u64> {
    // Deterministic pseudo-random lane data.
    let mut state = 0x853c_49e6_748f_ea9bu64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
        .collect()
}

#[test]
fn gf256_multipliers_flow_on_every_registered_target() {
    // The reconfigurability claim, end to end: every Table V method
    // implements correctly on every registry fabric, within each
    // fabric's LUT width and slice capacity.
    let field = gf256();
    let words = test_words(16);
    let oracle_out = field.mul_words(&words);
    for target in Target::ALL {
        let pipeline = Pipeline::new().with_target(target);
        for method in Method::ALL {
            let net = generate(&field, method);
            let artifacts = pipeline
                .run(&net)
                .unwrap_or_else(|e| panic!("{target}/{method:?}: {e}"));
            assert!(
                artifacts
                    .mapped
                    .luts()
                    .iter()
                    .all(|l| l.inputs.len() <= target.lut_inputs()),
                "{target}/{method:?}: LUT exceeds k"
            );
            assert!(
                artifacts.report.slices >= artifacts.report.luts.div_ceil(target.luts_per_slice()),
                "{target}/{method:?}: packing denser than the fabric allows"
            );
            assert_eq!(
                artifacts.mapped.eval_words(&words),
                oracle_out,
                "{target}/{method:?}"
            );
        }
    }
}

#[test]
fn narrow_fabric_costs_more_area_wide_fabric_less_depth() {
    // Across targets the shape response must be monotone for the
    // proposed method: LUT4 pays area/depth, the 8-input ALM saves
    // depth relative to LUT6.
    let field = gf256();
    let net = generate(&field, Method::ProposedFlat);
    let report = |t: Target| Pipeline::new().with_target(t).run_report(&net).unwrap();
    let narrow = report(Target::Spartan3);
    let mid = report(Target::Artix7);
    let wide = report(Target::StratixAlm);
    assert!(narrow.luts > mid.luts);
    assert!(narrow.depth >= mid.depth);
    assert!(wide.depth <= mid.depth);
}

#[test]
fn proposed_flat_benefits_from_resynthesis() {
    // The paper's core claim, in mapping terms: giving the synthesiser
    // freedom (resynthesis on) must not hurt the flat method, and
    // usually helps its depth/area.
    let field = gf256();
    let net = generate(&field, Method::ProposedFlat);
    let with = Pipeline::new().run_report(&net).unwrap();
    let without = Pipeline::new()
        .with_resynthesis(false)
        .run_report(&net)
        .unwrap();
    assert!(
        with.depth <= without.depth,
        "resynthesis worsened depth: {} vs {}",
        with.depth,
        without.depth
    );
    assert!(
        with.luts <= without.luts + 2,
        "resynthesis exploded area: {} vs {}",
        with.luts,
        without.luts
    );
}

#[test]
fn fanout_preserving_mode_is_never_better_than_free() {
    let field = gf256();
    for method in Method::ALL {
        let net = generate(&field, method);
        let free = Pipeline::new().run_report(&net).unwrap();
        let fp = Pipeline::new()
            .with_map_options(MapOptions::new().with_mode(MapMode::FanoutPreserving))
            .run_report(&net)
            .unwrap();
        assert!(
            free.depth <= fp.depth,
            "{method:?}: free depth {} > fanout-preserving {}",
            free.depth,
            fp.depth
        );
    }
}

#[test]
fn larger_field_flow_is_consistent() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(64, 23).unwrap());
    let net = generate(&field, Method::ProposedFlat);
    let r = Pipeline::new().run_report(&net).unwrap();
    // Paper's (64,23) row: 1769–1854 LUTs on ISE; our mapper should land
    // in the same order of magnitude.
    assert!(
        (800..=4000).contains(&r.luts),
        "unexpected LUT count {}",
        r.luts
    );
    assert!(r.time_ns > 5.0);
    assert!(r.depth >= 2);
}

#[test]
fn flow_reports_are_deterministic_across_runs() {
    let field = gf256();
    let net = generate(&field, Method::Imana2016);
    let a = Pipeline::new().run_report(&net).unwrap();
    let b = Pipeline::new().run_report(&net).unwrap();
    assert_eq!(a.luts, b.luts);
    assert_eq!(a.slices, b.slices);
    assert_eq!(a.time_ns, b.time_ns);
}

#[test]
fn parallel_placement_flow_is_deterministic_and_comparable() {
    // Multi-threaded placement must stay reproducible for a fixed seed
    // and thread count, and land in the same quality envelope as the
    // sequential flow (it anneals the same budget, just in bands).
    let field = gf256();
    let net = generate(&field, Method::ProposedFlat);
    let seq = Pipeline::new().run_report(&net).unwrap();
    let par_a = Pipeline::new()
        .with_place_threads(4)
        .run_report(&net)
        .unwrap();
    let par_b = Pipeline::new()
        .with_place_threads(4)
        .run_report(&net)
        .unwrap();
    assert_eq!(par_a.luts, par_b.luts);
    assert_eq!(par_a.slices, par_b.slices);
    assert_eq!(par_a.time_ns, par_b.time_ns);
    // Mapping and packing are unaffected by placement threads.
    assert_eq!(par_a.luts, seq.luts);
    assert_eq!(par_a.slices, seq.slices);
    // Timing comes from a different (banded) anneal but must stay in
    // the same envelope.
    assert!(
        (par_a.time_ns - seq.time_ns).abs() <= seq.time_ns * 0.5,
        "parallel placement timing {} drifted too far from sequential {}",
        par_a.time_ns,
        seq.time_ns
    );
}
