//! A sub-quadratic Karatsuba multiplier generator (extension baseline).
//!
//! The paper's six Table V methods are all quadratic (m² AND gates).
//! Karatsuba recursion trades AND gates for XOR gates and depth — the
//! classic space/time alternative for large fields. Including it shows
//! where the paper's quadratic designs stop being area-optimal, and
//! exercises the generator framework on a structurally different
//! algorithm.

use gf2m::Field;
use netlist::{Netlist, NodeId};
use rgf2m_core::gen::{MulCircuit, MultiplierGenerator};

/// Generator for a recursive Karatsuba polynomial multiplier followed by
/// reduction-matrix reduction.
///
/// Recursion switches to schoolbook below [`Karatsuba::threshold`]
/// coordinates (the standard hybrid, since Karatsuba's XOR overhead
/// dominates at small sizes).
///
/// # Examples
///
/// ```
/// use gf2m::Field;
/// use gf2poly::TypeIiPentanomial;
/// use rgf2m_baselines::Karatsuba;
/// use rgf2m_core::MultiplierGenerator;
///
/// let field = Field::from_pentanomial(&TypeIiPentanomial::new(64, 23)?);
/// let net = Karatsuba::default().generate(&field);
/// // Sub-quadratic: strictly fewer than 64² AND gates.
/// assert!(net.stats().ands < 64 * 64);
/// # Ok::<(), gf2poly::PentanomialError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Karatsuba {
    threshold: usize,
}

impl Karatsuba {
    /// Creates a generator with the given schoolbook cut-off.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 2`.
    pub fn new(threshold: usize) -> Self {
        assert!(threshold >= 2, "threshold must be at least 2");
        Karatsuba { threshold }
    }

    /// The schoolbook cut-off size.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl Default for Karatsuba {
    /// Threshold 8 — a conventional hybrid cut-off.
    fn default() -> Self {
        Karatsuba::new(8)
    }
}

impl MultiplierGenerator for Karatsuba {
    fn name(&self) -> &'static str {
        "karatsuba"
    }

    fn citation(&self) -> &'static str {
        "(extension)"
    }

    fn generate(&self, field: &Field) -> Netlist {
        let m = field.m();
        let red = field.reduction_matrix().clone();
        let mut circuit = MulCircuit::new(m, format!("mul_karatsuba_m{m}"));
        let a: Vec<NodeId> = (0..m).map(|i| circuit.a_input(i)).collect();
        let b: Vec<NodeId> = (0..m).map(|j| circuit.b_input(j)).collect();
        // Unreduced product d_0..d_{2m-2}.
        let d = karatsuba_rec(circuit.net_mut(), &a, &b, self.threshold);
        debug_assert_eq!(d.len(), 2 * m - 1);
        // Reduce via the reduction matrix.
        for k in 0..m {
            let mut parts = vec![d[k]];
            for t in 0..m - 1 {
                if red.entry(k, t) {
                    parts.push(d[m + t]);
                }
            }
            let c = circuit.net_mut().xor_balanced(&parts);
            circuit.output(k, c);
        }
        circuit.finish()
    }
}

/// Recursive Karatsuba over coordinate slices; returns the 2n−1
/// coefficients of the polynomial product.
fn karatsuba_rec(net: &mut Netlist, a: &[NodeId], b: &[NodeId], threshold: usize) -> Vec<NodeId> {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    if n == 0 {
        return Vec::new();
    }
    if n <= threshold {
        // Schoolbook base case with balanced antidiagonal trees.
        let mut out = Vec::with_capacity(2 * n - 1);
        for k in 0..2 * n - 1 {
            let mut terms = Vec::new();
            for i in k.saturating_sub(n - 1)..=k.min(n - 1) {
                let p = net.and(a[i], b[k - i]);
                terms.push(p);
            }
            out.push(net.xor_balanced(&terms));
        }
        return out;
    }
    let half = n / 2;
    let (a_lo, a_hi) = a.split_at(half);
    let (b_lo, b_hi) = b.split_at(half);
    // Three recursive products: lo·lo, hi·hi, (lo+hi)·(lo+hi).
    let p_lo = karatsuba_rec(net, a_lo, b_lo, threshold);
    let p_hi = karatsuba_rec(net, a_hi, b_hi, threshold);
    let a_mid: Vec<NodeId> = (0..n - half)
        .map(|i| {
            if i < half {
                net.xor(a_lo[i], a_hi[i])
            } else {
                a_hi[i]
            }
        })
        .collect();
    let b_mid: Vec<NodeId> = (0..n - half)
        .map(|i| {
            if i < half {
                net.xor(b_lo[i], b_hi[i])
            } else {
                b_hi[i]
            }
        })
        .collect();
    let p_mid = karatsuba_rec(net, &a_mid, &b_mid, threshold);
    // Combine: result = p_lo + X^half·(p_mid − p_lo − p_hi) + X^{2·half}·p_hi.
    let zero = net.constant(false);
    let mut out = vec![zero; 2 * n - 1];
    let acc = |net: &mut Netlist, out: &mut Vec<NodeId>, idx: usize, v: NodeId| {
        out[idx] = net.xor(out[idx], v);
    };
    for (i, &v) in p_lo.iter().enumerate() {
        acc(net, &mut out, i, v);
        acc(net, &mut out, i + half, v); // subtraction = addition in GF(2)
    }
    for (i, &v) in p_hi.iter().enumerate() {
        acc(net, &mut out, i + 2 * half, v);
        acc(net, &mut out, i + half, v);
    }
    for (i, &v) in p_mid.iter().enumerate() {
        acc(net, &mut out, i + half, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2poly::TypeIiPentanomial;
    use netlist::sim::{check_against_oracle_exhaustive, check_against_oracle_random};

    #[test]
    fn correct_exhaustively_on_gf256() {
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
        // Threshold 2 forces real recursion even at m = 8.
        let net = Karatsuba::new(2).generate(&field);
        let oracle = |w: &[u64]| field.mul_words(w);
        assert!(check_against_oracle_exhaustive(&net, oracle).is_equivalent());
    }

    #[test]
    fn correct_on_odd_sized_field() {
        // Odd m exercises the asymmetric split at every level.
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(11, 4).unwrap());
        let net = Karatsuba::new(3).generate(&field);
        let oracle = |w: &[u64]| field.mul_words(w);
        assert!(check_against_oracle_exhaustive(&net, oracle).is_equivalent());
    }

    #[test]
    fn sub_quadratic_and_count() {
        for (m, n) in [(64usize, 23usize), (113, 34)] {
            let field = Field::from_pentanomial(&TypeIiPentanomial::new(m, n).unwrap());
            let net = Karatsuba::default().generate(&field);
            let ands = net.stats().ands;
            assert!(ands < m * m, "({m},{n}): {ands} >= m²");
            // And the asymptotic is roughly m^1.585: allow generous slack.
            let bound = (3.0 * (m as f64).powf(1.7)) as usize;
            assert!(ands < bound, "({m},{n}): {ands} >= {bound}");
            let oracle = |w: &[u64]| field.mul_words(w);
            assert!(check_against_oracle_random(&net, oracle, 3, 99).is_equivalent());
        }
    }

    #[test]
    fn trades_ands_for_xors_and_depth() {
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(64, 23).unwrap());
        let kara = Karatsuba::default().generate(&field).stats();
        let quad = crate::Rashidi.generate(&field).stats();
        assert!(kara.ands < quad.ands);
        assert!(kara.depth.xors >= quad.depth.xors);
    }

    #[test]
    fn threshold_validation() {
        assert!(std::panic::catch_unwind(|| Karatsuba::new(1)).is_err());
        assert_eq!(Karatsuba::default().threshold(), 8);
    }

    #[test]
    fn threshold_larger_than_m_degenerates_to_schoolbook() {
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
        let net = Karatsuba::new(64).generate(&field);
        assert_eq!(net.stats().ands, 64); // pure schoolbook
        let oracle = |w: &[u64]| field.mul_words(w);
        assert!(check_against_oracle_exhaustive(&net, oracle).is_equivalent());
    }
}
