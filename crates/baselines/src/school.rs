//! A naive two-step reference multiplier (not part of Table V).

use gf2m::Field;
use netlist::Netlist;
use rgf2m_core::gen::{MulCircuit, MultiplierGenerator};
use rgf2m_core::terms::d_terms;

/// A deliberately naive two-step multiplier: `d_k` built by *chained*
/// XOR accumulation (schoolbook order), then reduction, also chained.
///
/// This is the structural worst case — linear depth — kept as a
/// reference point for tests and for the ablation benches showing how
/// much tree construction matters. It is functionally identical to every
/// other generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct School;

impl MultiplierGenerator for School {
    fn name(&self) -> &'static str {
        "school"
    }

    fn citation(&self) -> &'static str {
        "(reference)"
    }

    fn generate(&self, field: &Field) -> Netlist {
        let m = field.m();
        let red = field.reduction_matrix().clone();
        let mut circuit = MulCircuit::new(m, format!("mul_school_m{m}"));
        let d_nodes: Vec<_> = (0..=2 * m - 2)
            .map(|k| {
                // Chain over raw products in schoolbook order.
                let products: Vec<_> = d_terms(m, k).iter().flat_map(|t| t.products()).collect();
                let nodes: Vec<_> = products
                    .into_iter()
                    .map(|(i, j)| circuit.product(i, j))
                    .collect();
                circuit.net_mut().xor_chain(&nodes)
            })
            .collect();
        for k in 0..m {
            let mut acc = vec![d_nodes[k]];
            for t in 0..m - 1 {
                if red.entry(k, t) {
                    acc.push(d_nodes[m + t]);
                }
            }
            let c = circuit.net_mut().xor_chain(&acc);
            circuit.output(k, c);
        }
        circuit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2poly::TypeIiPentanomial;
    use netlist::sim::check_against_oracle_exhaustive;

    fn gf256() -> Field {
        Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap())
    }

    #[test]
    fn correct_exhaustively_on_gf256() {
        let field = gf256();
        let net = School.generate(&field);
        let oracle = |w: &[u64]| field.mul_words(w);
        assert!(check_against_oracle_exhaustive(&net, oracle).is_equivalent());
    }

    #[test]
    fn depth_is_much_worse_than_tree_methods() {
        let field = gf256();
        let school = School.generate(&field).depth().xors;
        let rashidi = crate::Rashidi.generate(&field).depth().xors;
        assert!(
            school >= 2 * rashidi,
            "school {school} vs rashidi {rashidi}"
        );
    }

    #[test]
    fn same_and_count_as_everyone_else() {
        assert_eq!(School.generate(&gf256()).stats().ands, 64);
    }
}
