//! Baseline GF(2^m) bit-parallel multiplier generators.
//!
//! The three published architectures the paper's Table V compares
//! against — [`MastrovitoPaar`] (\[2\]), [`Rashidi`] (\[8\]) and
//! [`ReyhaniHasan`] (\[3\]) — now live in [`rgf2m_core::gen`] behind the
//! unified [`rgf2m_core::Method`] registry, so a single enum covers the
//! whole Table V row order. This crate re-exports them under their
//! historical paths and keeps the two *extra-paper* references:
//!
//! * [`School`] — a deliberately naive two-step multiplier (chained
//!   XOR accumulation) kept as a structural worst-case reference for
//!   tests and ablations (not part of the paper's Table V);
//! * [`Karatsuba`] — a sub-quadratic recursive multiplier (extension
//!   beyond the paper: fewer AND gates, more XOR depth).
//!
//! # Examples
//!
//! ```
//! use gf2m::Field;
//! use gf2poly::TypeIiPentanomial;
//! use rgf2m_baselines::ReyhaniHasan;
//! use rgf2m_core::MultiplierGenerator;
//!
//! let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2)?);
//! let net = ReyhaniHasan.generate(&field);
//! // The paper cites 77 XOR gates for [3] at (m, n) = (8, 2); our
//! // builder shares one repeated pair node, landing at 76.
//! assert_eq!(net.stats().xors, 76);
//! # Ok::<(), gf2poly::PentanomialError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod karatsuba;
mod school;

pub use karatsuba::Karatsuba;
pub use school::School;

// Re-homed into the `rgf2m_core` registry (see `rgf2m_core::Method`);
// re-exported here so downstream `rgf2m_baselines::*` imports keep
// compiling during the migration.
pub use rgf2m_core::{coefficient_support, MastrovitoPaar, Rashidi, ReyhaniHasan};
