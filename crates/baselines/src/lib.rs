//! Baseline GF(2^m) bit-parallel multiplier generators.
//!
//! The paper compares its proposed multiplier against four published
//! architectures; this crate implements the gate-level constructions the
//! comparison needs (all over the shared [`netlist`] IR, all verified
//! against the [`gf2m`] software oracle):
//!
//! * [`MastrovitoPaar`] — the product-matrix multiplier of Mastrovito as
//!   refined by Paar (\[2\] in the paper): shared `a`-coordinate sums,
//!   then one AND per matrix entry, then row XOR trees;
//! * [`ReyhaniHasan`] — the low-complexity polynomial-basis multiplier
//!   of Reyhani-Masoleh & Hasan (\[3\]): shared antidiagonal (`d_k`)
//!   trees followed by the reduction network — `m²−1 + (reduction)` XOR
//!   gates;
//! * [`Rashidi`] — the bit-parallel variant of Rashidi, Farashahi &
//!   Sayedi (\[8\]): per-coefficient *flattened* product supports summed
//!   in perfectly balanced trees — the minimum-delay construction;
//! * [`School`] — a deliberately naive two-step multiplier (chained
//!   XOR accumulation) kept as a structural worst-case reference for
//!   tests and ablations (not part of the paper's Table V);
//! * [`Karatsuba`] — a sub-quadratic recursive multiplier (extension
//!   beyond the paper: fewer AND gates, more XOR depth).
//!
//! # Examples
//!
//! ```
//! use gf2m::Field;
//! use gf2poly::TypeIiPentanomial;
//! use rgf2m_baselines::ReyhaniHasan;
//! use rgf2m_core::MultiplierGenerator;
//!
//! let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2)?);
//! let net = ReyhaniHasan.generate(&field);
//! // The paper cites 77 XOR gates for [3] at (m, n) = (8, 2); our
//! // builder shares one repeated pair node, landing at 76.
//! assert_eq!(net.stats().xors, 76);
//! # Ok::<(), gf2poly::PentanomialError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod karatsuba;
mod mastrovito;
mod rashidi;
mod reyhani;
mod school;
mod support;

pub use karatsuba::Karatsuba;
pub use mastrovito::MastrovitoPaar;
pub use rashidi::Rashidi;
pub use reyhani::ReyhaniHasan;
pub use school::School;
pub use support::coefficient_support;
