//! Cross-method equivalence and complexity-ordering tests: all six
//! Table V methods agree pairwise and show the documented structure.

use gf2m::Field;
use gf2poly::TypeIiPentanomial;
use netlist::sim::{check_equivalent_exhaustive, check_equivalent_random};
use netlist::Netlist;
use rgf2m_baselines::{MastrovitoPaar, Rashidi, ReyhaniHasan, School};
use rgf2m_core::{generate, Method, MultiplierGenerator};

fn all_table_v_methods(field: &Field) -> Vec<(&'static str, Netlist)> {
    vec![
        ("[2] mastrovito", MastrovitoPaar.generate(field)),
        ("[8] rashidi", Rashidi.generate(field)),
        ("[3] reyhani", ReyhaniHasan.generate(field)),
        ("[6] imana2012", generate(field, Method::Imana2012)),
        ("[7] imana2016", generate(field, Method::Imana2016)),
        ("this-work proposed", generate(field, Method::ProposedFlat)),
    ]
}

#[test]
fn all_six_methods_pairwise_equivalent_gf256() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    let nets = all_table_v_methods(&field);
    let (ref_name, reference) = &nets[0];
    for (name, net) in &nets[1..] {
        let r = check_equivalent_exhaustive(reference, net);
        assert!(r.is_equivalent(), "{ref_name} vs {name}: {r:?}");
    }
}

#[test]
fn all_six_methods_equivalent_on_every_table_v_field_random() {
    for &(m, n) in gf2poly::catalogue::TABLE_V_FIELDS.iter() {
        if m > 64 {
            continue; // larger fields covered by the slower suite below
        }
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(m, n).unwrap());
        let nets = all_table_v_methods(&field);
        let (_, reference) = &nets[0];
        for (name, net) in &nets[1..] {
            let r = check_equivalent_random(reference, net, 4, 99);
            assert!(r.is_equivalent(), "({m},{n}) {name}: {r:?}");
        }
    }
}

#[test]
fn all_six_methods_equivalent_on_nist163_random() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(163, 66).unwrap());
    let nets = all_table_v_methods(&field);
    let (_, reference) = &nets[0];
    for (name, net) in &nets[1..] {
        let r = check_equivalent_random(reference, net, 2, 163);
        assert!(r.is_equivalent(), "(163,66) {name}: {r:?}");
    }
    // And against the software oracle, to anchor the whole family.
    let oracle = |w: &[u64]| field.mul_words(w);
    let r = netlist::sim::check_against_oracle_random(reference, oracle, 2, 164);
    assert!(r.is_equivalent(), "reference vs oracle: {r:?}");
}

#[test]
fn school_reference_agrees_with_rashidi() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(13, 5).unwrap());
    let school = School.generate(&field);
    let rashidi = Rashidi.generate(&field);
    assert!(check_equivalent_random(&school, &rashidi, 8, 5).is_equivalent());
}

#[test]
fn depth_ordering_matches_paper_theory_gf256() {
    // Theoretical delays cited in the paper for (8,2):
    // [8] = T_A+5T_X (min), [7]/proposed-family = T_A+5T_X,
    // [6] = T_A+6T_X, [3] = T_A+7T_X (our balanced variant ≤ that).
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    let depth_of = |net: &Netlist| net.depth().xors;
    let rashidi = depth_of(&Rashidi.generate(&field));
    let imana2016 = depth_of(&generate(&field, Method::Imana2016));
    let imana2012 = depth_of(&generate(&field, Method::Imana2012));
    assert_eq!(rashidi, 5);
    assert_eq!(imana2016, 5);
    assert_eq!(imana2012, 6);
}

#[test]
fn every_method_exports_valid_looking_vhdl() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    for (name, net) in all_table_v_methods(&field) {
        let vhdl = net.to_vhdl();
        assert!(vhdl.contains("entity"), "{name}");
        assert!(vhdl.contains("architecture structural"), "{name}");
        let verilog = net.to_verilog();
        assert!(verilog.contains("endmodule"), "{name}");
    }
}
