//! Machine-checked statements from the paper's text, beyond the tables:
//! each test quotes the claim it verifies.

use rgf2m::prelude::*;

/// §I/§II: "Type II irreducible pentanomials f(y) = y^m + y^{n+2} +
/// y^{n+1} + y^n + 1, with 2 ≤ n ≤ ⌊m/2⌋−1, are important because they
/// are abundant..."
#[test]
fn type_ii_pentanomials_are_abundant() {
    let mut degrees_with_at_least_one = 0;
    for m in 6..=128usize {
        if TypeIiPentanomial::first(m).is_some() {
            degrees_with_at_least_one += 1;
        }
    }
    // A majority of degrees in 6..=128 admit one (we measure 73 of 123,
    // ≈ 59% — "abundant" relative to, e.g., irreducible trinomials,
    // which miss every m ≡ 0 (mod 8)).
    assert!(
        degrees_with_at_least_one * 2 > 128 - 6,
        "only {degrees_with_at_least_one} of 123 degrees have a type II pentanomial"
    );
}

/// §I: "...all five binary fields recommended by NIST for ECDSA can be
/// constructed using such polynomials." (571 exercised separately —
/// see `nist_571_admits_type_ii_pentanomial`.)
#[test]
fn nist_fields_admit_type_ii_pentanomials() {
    for m in [163usize, 233, 283, 409] {
        assert!(
            TypeIiPentanomial::first(m).is_some(),
            "NIST degree {m} has no type II pentanomial"
        );
    }
}

/// The m = 571 case of the NIST claim (slowest; kept separate).
/// Runs by default in release builds — seconds there — and stays
/// ignored only under debug assertions, where the GF(2) polynomial
/// arithmetic is an order of magnitude slower.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "takes ~a minute unoptimized; runs by default in release builds (cargo test --release)"
)]
fn nist_571_admits_type_ii_pentanomial() {
    assert!(TypeIiPentanomial::first(571).is_some());
}

/// §II: the worked S/T example — "for GF(2^8) the addition of S1 + T4 =
/// a0b0 + (a6b6 + (a5b7 + a7b5)) would result in a 3-level binary tree
/// of XOR gates. However ... it could be done with a 2-level complete
/// binary tree."
#[test]
fn s1_plus_t4_packs_into_two_levels() {
    use netlist::Netlist;
    let sit = SiTi::new(8);
    // Monolithic: S1 + (T4 as a nested tree) — 3 XOR levels.
    let mut mono = Netlist::new("mono");
    let nodes: Vec<_> = {
        let mut b = Vec::new();
        for t in sit.s(1).iter().chain(sit.t(4)) {
            let prods: Vec<_> = t
                .products()
                .iter()
                .map(|&(i, j)| {
                    let a = mono.input(format!("a{i}_{j}"));
                    let bb = mono.input(format!("b{i}_{j}"));
                    mono.and(a, bb)
                })
                .collect();
            b.push(prods);
        }
        b
    };
    // S1 = x0 (1 product); T4 = x6 + z5^7 (3 products).
    assert_eq!(nodes[0].len(), 1);
    assert_eq!(nodes[1].len() + nodes[2].len(), 3);
    // All four products in one balanced tree: 2 XOR levels.
    let mut flat = Vec::new();
    for group in &nodes {
        flat.extend_from_slice(group);
    }
    let root = mono.xor_balanced(&flat);
    mono.output("y", root);
    assert_eq!(mono.depth().xors, 2);
}

/// §II: "the delay complexity is TA + 5TX ... the lowest one among
/// similar GF(2^8) multipliers, such as those given in [6] and [3],
/// with delays TA + 6TX and TA + 7TX".
#[test]
fn delay_hierarchy_for_gf256() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    let d2016 = generate(&field, Method::Imana2016).depth();
    let d2012 = generate(&field, Method::Imana2012).depth();
    assert_eq!((d2016.ands, d2016.xors), (1, 5), "[7]-style splitting");
    assert_eq!((d2012.ands, d2012.xors), (1, 6), "[6]-style monolithic");
}

/// §II: "The space complexity ... was found to be 64 AND and 87 XOR
/// gates" for the Table III multiplier; "the number of 2-input AND
/// gates is the same in all approaches".
#[test]
fn space_complexity_for_gf256() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    // "the number of 2-input AND gates is the same in all approaches"
    // refers to the methods that AND raw operand bits (m² partial
    // products); Mastrovito/Paar ANDs sums of a-coordinates instead, so
    // its count is one per nonzero matrix entry.
    for method in Method::ALL {
        if method == Method::MastrovitoPaar {
            continue;
        }
        assert_eq!(generate(&field, method).stats().ands, 64, "{method:?}");
    }
    let xors = generate(&field, Method::Imana2016).stats().xors;
    // Paper: 87 with [7]'s exact sharing; ours shares via hash-consing
    // and deterministic Huffman pairing, landing within a few gates.
    assert!(
        (80..=95).contains(&xors),
        "parenthesised XOR count {xors} far from the paper's 87"
    );
}

/// §II, eq. (1): the Si/Ti definitions — cross-checked against direct
/// antidiagonal enumeration for every m up to 96 (both parities).
#[test]
fn equation_1_is_correct_for_all_m_up_to_96() {
    for m in 2..=96 {
        let direct = SiTi::new(m);
        let formula = SiTi::from_equation_1(m);
        for i in 1..=m {
            let mut a = direct.s(i).to_vec();
            let mut b = formula.s(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "S_{i}, m={m}");
        }
        for i in 0..=m.saturating_sub(2) {
            let mut a = direct.t(i).to_vec();
            let mut b = formula.t(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "T_{i}, m={m}");
        }
    }
}

/// §III/§IV: the central architectural claim — removing the
/// parenthesised restriction must never hurt the mapped LUT depth
/// (the synthesis tool can only gain freedom).
#[test]
fn flat_never_maps_deeper_than_parenthesised() {
    for (m, n) in [(8usize, 2usize), (16, 3), (64, 23)] {
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(m, n).unwrap());
        let pipeline = Pipeline::new();
        let flat = pipeline
            .run_report(&generate(&field, Method::ProposedFlat))
            .unwrap();
        let paren = pipeline
            .run_report(&generate(&field, Method::Imana2016))
            .unwrap();
        assert!(
            flat.depth <= paren.depth + 1,
            "({m},{n}): flat LUT depth {} vs paren {}",
            flat.depth,
            paren.depth
        );
    }
}

/// Table V structure: every (m, n) pair the paper implements is a valid
/// type II irreducible pentanomial, and the two m = 163 variants match
/// the NIST degree.
#[test]
fn table_v_field_list_is_well_formed() {
    let fields = gf2poly::catalogue::table_v_pentanomials();
    assert_eq!(fields.len(), 9);
    assert_eq!(fields.iter().filter(|p| p.m() == 163).count(), 2);
    assert_eq!(fields.iter().filter(|p| p.m() == 113).count(), 2);
    for p in &fields {
        assert!(gf2poly::is_irreducible(&p.to_poly()), "{p}");
    }
}
