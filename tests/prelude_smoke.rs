//! Workspace-surface smoke test: every item the `rgf2m::prelude` promises
//! must stay importable by its documented name, and the crate-level
//! re-export aliases (`rgf2m::core`, `rgf2m::baselines`, ...) must keep
//! resolving. A rename anywhere in the workspace breaks this file at
//! compile time, before any behavioural test runs.

// Each item imported explicitly — a glob would hide removals.
use rgf2m::prelude::{
    generate, is_irreducible, AtomKind, CoefficientTable, Device, Field, FieldError,
    FlatCoefficientTable, FlowArtifacts, FlowError, Gate, Gf2Poly, ImplReport, MapMode, MapOptions,
    MastrovitoMatrix, MastrovitoPaar, Method, MultiplierGenerator, Netlist, NodeId,
    PentanomialError, Pipeline, PlaceOptions, ProductTerm, Rashidi, ReductionMatrix, ReyhaniHasan,
    School, SiTi, SplitAtom, Target, TypeIiPentanomial,
};

/// The facade's module aliases must also stay stable.
#[allow(unused_imports)]
mod facade_aliases {
    pub use rgf2m::apps;
    pub use rgf2m::baselines;
    pub use rgf2m::core;
    pub use rgf2m::fpga;
    pub use rgf2m::gf2m;
    pub use rgf2m::gf2poly;
    pub use rgf2m::netlist;
}

fn type_exists<T: ?Sized>() {}

#[test]
fn every_prelude_type_is_nameable() {
    type_exists::<Field>();
    type_exists::<FieldError>();
    type_exists::<MastrovitoMatrix>();
    type_exists::<ReductionMatrix>();
    type_exists::<Gf2Poly>();
    type_exists::<PentanomialError>();
    type_exists::<TypeIiPentanomial>();
    type_exists::<Gate>();
    type_exists::<Netlist>();
    type_exists::<NodeId>();
    type_exists::<MastrovitoPaar>();
    type_exists::<Rashidi>();
    type_exists::<ReyhaniHasan>();
    type_exists::<School>();
    type_exists::<AtomKind>();
    type_exists::<CoefficientTable>();
    type_exists::<FlatCoefficientTable>();
    type_exists::<Method>();
    type_exists::<ProductTerm>();
    type_exists::<SiTi>();
    type_exists::<SplitAtom>();
    type_exists::<ImplReport>();
    type_exists::<MapMode>();
    type_exists::<MapOptions>();
    // The redesigned flow surface.
    type_exists::<Pipeline>();
    type_exists::<FlowError>();
    type_exists::<FlowArtifacts>();
    type_exists::<PlaceOptions>();
    // The target-registry surface.
    type_exists::<Target>();
    type_exists::<Device>();
}

/// The generator trait must be usable as a bound.
fn assert_generator_bound<G: MultiplierGenerator>() {}

#[test]
fn trait_items_are_usable_as_bounds() {
    assert_generator_bound::<MastrovitoPaar>();
    assert_generator_bound::<School>();
}

#[test]
fn unified_registry_is_reachable_from_the_prelude() {
    // The redesign's acceptance contract: all six Table V generators
    // behind one enum, in the paper's row order.
    assert_eq!(Method::ALL.len(), 6);
    let citations: Vec<&str> = Method::ALL.iter().map(|m| m.citation()).collect();
    assert_eq!(citations, ["[2]", "[8]", "[3]", "[6]", "[7]", "This work"]);
}

#[test]
fn target_registry_is_reachable_from_the_prelude() {
    // The PR-4 acceptance contract: at least four fabric presets with
    // distinct (k, LUTs/slice) shapes behind one enum, each resolvable
    // by name, each yielding a device whose shape matches.
    assert!(Target::ALL.len() >= 4);
    let mut shapes: Vec<(usize, usize)> = Target::ALL
        .iter()
        .map(|t| {
            assert_eq!(Target::from_name(t.name()), Some(*t));
            let d: Device = t.device();
            assert_eq!(
                (d.lut_inputs, d.luts_per_slice),
                (t.lut_inputs(), t.luts_per_slice())
            );
            (t.lut_inputs(), t.luts_per_slice())
        })
        .collect();
    shapes.sort_unstable();
    shapes.dedup();
    assert_eq!(shapes.len(), Target::ALL.len());
}

#[test]
fn prelude_functions_run_end_to_end() {
    // `is_irreducible` on the AES modulus.
    let f = Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]);
    assert!(is_irreducible(&f));

    // `Field::from_pentanomial` + `generate` + the FPGA pipeline: the
    // same flow the quickstart documents, in miniature, on the new
    // fallible surface.
    let penta = TypeIiPentanomial::new(8, 2).expect("paper field exists");
    let field = Field::from_pentanomial(&penta);
    let net = generate(&field, Method::ProposedFlat);
    assert_eq!(net.num_inputs(), 16);

    let report = Pipeline::new()
        .run_report(&net)
        .expect("pipeline runs clean");
    assert!(report.luts > 0);
    assert!(report.time_ns > 0.0);

    // Retargeting through the prelude: one knob, consistent numbers.
    let wide = Pipeline::new()
        .with_target(Target::StratixAlm)
        .run_report(&net)
        .expect("wide fabric runs clean");
    assert!(wide.depth <= report.depth);
}
