//! Workspace-level integration tests: algebra → generators → netlists →
//! FPGA flow → applications, crossing every crate boundary.

use rgf2m::prelude::*;

/// The whole Table V family now comes straight from the registry.
fn all_methods() -> Vec<Box<dyn MultiplierGenerator>> {
    Method::ALL.iter().map(|m| m.generator()).collect()
}

#[test]
fn every_method_exhaustively_correct_on_the_papers_field() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    for gen in all_methods() {
        let net = gen.generate(&field);
        let oracle = |w: &[u64]| field.mul_words(w);
        let r = netlist::sim::check_against_oracle_exhaustive(&net, oracle);
        assert!(r.is_equivalent(), "{}: {r:?}", gen.name());
    }
}

#[test]
fn every_method_survives_the_full_fpga_flow_on_gf256() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    // One shared pipeline: the re-verification stage runs per design,
    // and a mapping mismatch arrives as a typed error.
    let pipeline = Pipeline::new();
    for gen in all_methods() {
        let net = gen.generate(&field);
        let report = pipeline
            .run_report(&net)
            .unwrap_or_else(|e| panic!("{}: {e}", gen.name()));
        assert!(report.luts >= 17, "{}: too few LUTs to be real", gen.name());
        assert!(report.time_ns > 4.0, "{}", gen.name());
    }
    assert_eq!(pipeline.cache_len(), Method::ALL.len());
}

#[test]
fn mapped_multiplier_still_multiplies_through_lut_simulation() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    let net = generate(&field, Method::ProposedFlat);
    let artifacts = Pipeline::new().run(&net).expect("clean run");
    // Exhaustive check of the LUT netlist against the software oracle.
    let mut base = 0u64;
    while base < (1 << 16) {
        let words: Vec<u64> = (0..16)
            .map(|i| {
                let mut w = 0u64;
                for l in 0..64 {
                    if ((base + l) >> i) & 1 == 1 {
                        w |= 1 << l;
                    }
                }
                w
            })
            .collect();
        assert_eq!(
            artifacts.mapped.eval_words(&words),
            field.mul_words(&words),
            "at base {base}"
        );
        base += 64;
    }
}

#[test]
fn hdl_exports_are_syntactically_plausible_for_all_methods() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(13, 5).unwrap());
    for gen in all_methods() {
        let net = gen.generate(&field);
        let vhdl = net.to_vhdl();
        assert_eq!(vhdl.matches("entity").count(), 2, "{}", gen.name());
        assert!(vhdl.contains("port ("), "{}", gen.name());
        let verilog = net.to_verilog();
        assert_eq!(verilog.matches("module").count(), 2, "{}", gen.name()); // module + endmodule
        let blif = net.to_blif();
        assert!(blif.contains(".model"), "{}", gen.name());
        assert!(blif.contains(".end"), "{}", gen.name());
    }
}

#[test]
fn reed_solomon_runs_on_top_of_the_same_field_layer() {
    use rgf2m::apps::reed_solomon::ReedSolomon;
    let rs = ReedSolomon::ccsds();
    // The codec field is literally the paper's multiplier field.
    assert_eq!(
        rs.field().modulus(),
        &gf2poly::Gf2Poly::from_exponents(&[8, 4, 3, 2, 0])
    );
    let data: Vec<u8> = (0..223).map(|i| (i ^ 0x5a) as u8).collect();
    let mut cw = rs.encode(&data);
    cw[5] ^= 1;
    cw[250] ^= 0x80;
    assert_eq!(&rs.decode(&cw).unwrap()[..223], &data[..]);
}

#[test]
fn binary_curve_runs_on_top_of_the_same_field_layer() {
    use rgf2m::apps::binary_ec::BinaryCurve;
    let curve = BinaryCurve::nist_b163();
    let g = curve.base_point();
    let p = curve.scalar_mul_u64(12345, &g);
    assert!(curve.is_on_curve(&p));
}

#[test]
fn proposed_method_generalizes_to_every_table_v_field() {
    for &(m, n) in &gf2poly::catalogue::TABLE_V_FIELDS {
        let field = Field::from_pentanomial(&TypeIiPentanomial::new(m, n).unwrap());
        let net = generate(&field, Method::ProposedFlat);
        assert_eq!(net.num_inputs(), 2 * m, "({m},{n})");
        assert_eq!(net.outputs().len(), m, "({m},{n})");
        assert_eq!(net.stats().ands, m * m, "({m},{n}): AND count");
        let oracle = |w: &[u64]| field.mul_words(w);
        let r = netlist::sim::check_against_oracle_random(&net, oracle, 2, 42);
        assert!(r.is_equivalent(), "({m},{n}): {r:?}");
    }
}

#[test]
fn dce_and_resynthesis_preserve_multiplier_semantics() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(16, 3).unwrap());
    let net = generate(&field, Method::ProposedFlat);
    let clean = net.eliminate_dead_code();
    let resynth = rgf2m::fpga::resynth::rebalance_xors(&clean, 6);
    let oracle = |w: &[u64]| field.mul_words(w);
    assert!(netlist::sim::check_against_oracle_random(&resynth, oracle, 8, 3).is_equivalent());
}
