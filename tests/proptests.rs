//! Cross-crate property tests: random operands, random fields, random
//! methods — the full stack must stay consistent.

use proptest::prelude::*;
use rgf2m::prelude::*;

/// A pool of small-to-medium fields covering both parities of m and
/// both pentanomial and trinomial moduli.
fn field_pool() -> Vec<Field> {
    vec![
        Field::from_pentanomial(&TypeIiPentanomial::new(7, 2).unwrap()),
        Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap()),
        Field::from_pentanomial(&TypeIiPentanomial::new(8, 3).unwrap()),
        Field::from_pentanomial(&TypeIiPentanomial::new(13, 5).unwrap()),
        Field::from_pentanomial(&TypeIiPentanomial::new(16, 3).unwrap()),
        Field::new(gf2poly::Gf2Poly::from_exponents(&[9, 1, 0])).unwrap(),
    ]
}

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Imana2012),
        Just(Method::Imana2016),
        Just(Method::ProposedFlat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_netlists_multiply_correctly(
        fi in 0usize..6,
        method in arb_method(),
        seed in any::<u64>(),
    ) {
        let field = &field_pool()[fi];
        let net = generate(field, method);
        let oracle = |w: &[u64]| field.mul_words(w);
        prop_assert!(
            netlist::sim::check_against_oracle_random(&net, oracle, 2, seed)
                .is_equivalent()
        );
    }

    #[test]
    fn netlist_product_is_commutative(
        fi in 0usize..6,
        a_bits in any::<u64>(),
        b_bits in any::<u64>(),
    ) {
        let field = &field_pool()[fi];
        let m = field.m();
        let net = generate(field, Method::ProposedFlat);
        let mk = |x: u64, y: u64| -> Vec<bool> {
            (0..m).map(|i| (x >> (i % 64)) & 1 == 1)
                .chain((0..m).map(|i| (y >> (i % 64)) & 1 == 1))
                .collect()
        };
        prop_assert_eq!(
            net.eval_bool(&mk(a_bits, b_bits)),
            net.eval_bool(&mk(b_bits, a_bits))
        );
    }

    #[test]
    fn multiplying_by_one_is_identity_at_gate_level(
        fi in 0usize..6,
        a_bits in any::<u64>(),
    ) {
        let field = &field_pool()[fi];
        let m = field.m();
        let net = generate(field, Method::Imana2016);
        let inputs: Vec<bool> = (0..m)
            .map(|i| (a_bits >> (i % 64)) & 1 == 1)
            .chain((0..m).map(|i| i == 0)) // b = 1
            .collect();
        let out = net.eval_bool(&inputs);
        let expect: Vec<bool> = inputs[..m].to_vec();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn resynthesis_preserves_random_multipliers(
        fi in 0usize..6,
        method in arb_method(),
        seed in any::<u64>(),
    ) {
        let field = &field_pool()[fi];
        let net = generate(field, method);
        let re = rgf2m::fpga::resynth::rebalance_xors(&net, 6);
        prop_assert!(
            netlist::sim::check_equivalent_random(&net, &re, 2, seed).is_equivalent()
        );
    }

    #[test]
    fn mapping_preserves_random_multipliers(
        fi in 0usize..6,
        k in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let field = &field_pool()[fi];
        let net = generate(field, Method::ProposedFlat);
        let mapped = rgf2m::fpga::map::map_to_luts(
            &net,
            &MapOptions::new().with_k(k),
        );
        prop_assert!(rgf2m::fpga::map::verify_mapping(&net, &mapped, 2, seed));
    }

    #[test]
    fn strash_dedup_preserves_formal_equivalence(
        fi in 0usize..6,
        mi in 0usize..6,
    ) {
        // The proof-carrying dedup rewrite must never change the
        // function: its output still passes complete algebraic
        // verification against the multiplication spec, for every
        // registered method over every pooled field. And because the
        // netlist builder hash-conses, there is never anything for it
        // to reclaim on a generated design.
        let field = &field_pool()[fi];
        let net = generate(field, Method::ALL[mi]);
        let (deduped, saved) = strash_dedup(&net);
        prop_assert_eq!(saved, 0);
        let spec = multiplier_spec(field);
        prop_assert!(Pipeline::new().verify_formal(&spec, &deduped).is_ok());
    }

    #[test]
    fn census_totals_match_netlist_stats(
        fi in 0usize..6,
        mi in 0usize..6,
    ) {
        // The gate census is just a different projection of the same
        // netlist: its per-kind totals must agree with `stats()` and
        // with the Table V area formulas, gate for gate.
        let field = &field_pool()[fi];
        let method = Method::ALL[mi];
        let net = generate(field, method);
        let census = GateCensus::of(&net);
        let stats = net.stats();
        prop_assert_eq!(census.ands, stats.ands);
        prop_assert_eq!(census.xors, stats.xors);
        let spec = area_spec(field, method);
        prop_assert_eq!(census.ands, spec.ands());
        prop_assert_eq!(census.xors, spec.xors());
    }

    #[test]
    fn field_and_gate_level_agree_on_random_triples(
        fi in 0usize..6,
        a_bits in any::<u64>(),
        b_bits in any::<u64>(),
    ) {
        // (a·b)·a == a·(b·a) through the gate level, twice through the
        // netlist.
        let field = &field_pool()[fi];
        let m = field.m();
        let net = generate(field, Method::ProposedFlat);
        let a = field.element_from_bits(a_bits);
        let b = field.element_from_bits(b_bits);
        let ab_sw = field.mul(&a, &b);
        let inputs: Vec<bool> = (0..m)
            .map(|i| a.coeff(i))
            .chain((0..m).map(|i| b.coeff(i)))
            .collect();
        let ab_hw = net.eval_bool(&inputs);
        prop_assert_eq!(ab_hw.len(), m);
        for (k, &bit) in ab_hw.iter().enumerate() {
            prop_assert_eq!(bit, ab_sw.coeff(k));
        }
    }
}
