//! Error-path coverage for the fallible `Pipeline` API: everything the
//! (now removed) legacy `FpgaFlow` used to panic on — or silently
//! accept, like a mapper LUT width disagreeing with the device — must
//! surface as a typed `FlowError` through the facade.

use rgf2m::prelude::*;

fn gf256_net() -> Netlist {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    generate(&field, Method::ProposedFlat)
}

#[test]
fn invalid_pentanomial_pairs_are_typed_errors() {
    // The gf2poly layer reports both failure modes...
    assert!(matches!(
        TypeIiPentanomial::new(8, 4),
        Err(PentanomialError::ShapeOutOfRange { .. })
    ));
    assert!(matches!(
        TypeIiPentanomial::new(16, 2),
        Err(PentanomialError::Reducible { .. })
    ));
    // ...and a flow driver folding them into the pipeline's error enum
    // keeps the message informative (this is exactly what
    // `rgf2m_bench::BatchRunner` does per job).
    let err = TypeIiPentanomial::new(16, 2)
        .map_err(|e| FlowError::InvalidOptions(format!("(16, 2): {e}")))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("invalid flow options"), "{msg}");
    assert!(msg.contains("reducible"), "{msg}");
}

#[test]
fn corrupted_lut_netlist_fails_verification_with_an_error() {
    let net = gf256_net();
    let pipeline = Pipeline::new();
    let synth = pipeline.resynth(&net).expect("valid options");
    let mut mapped = pipeline.map(&synth).expect("mapping succeeds");
    pipeline
        .verify(&net, &mapped)
        .expect("uncorrupted mapping verifies");

    // Deliberately corrupt one LUT's truth table: the multiplier no
    // longer multiplies, and the pipeline must say so — not panic.
    let truth = mapped.luts()[0].truth;
    mapped.set_truth(0, !truth);
    match pipeline.verify(&net, &mapped) {
        Err(FlowError::VerificationMismatch { design, rounds }) => {
            assert!(design.contains("mul_proposed"), "{design}");
            assert!(rounds > 0);
        }
        other => panic!("expected VerificationMismatch, got {other:?}"),
    }
}

#[test]
fn interface_corruption_is_also_a_verification_error() {
    let net = gf256_net();
    let pipeline = Pipeline::new();
    let mapped = pipeline
        .map(&pipeline.resynth(&net).unwrap())
        .expect("mapping succeeds");
    // Verifying against an unrelated design (different interface) must
    // be rejected before any random vectors run.
    let mut tiny = Netlist::new("tiny");
    let a = tiny.input("a");
    let b = tiny.input("b");
    let y = tiny.xor(a, b);
    tiny.output("y", y);
    match pipeline.verify(&tiny, &mapped) {
        Err(FlowError::VerificationMismatch { rounds, .. }) => assert_eq!(rounds, 0),
        other => panic!("expected VerificationMismatch, got {other:?}"),
    }
}

#[test]
fn invalid_map_options_are_rejected_up_front() {
    let pipeline = Pipeline::new().with_map_options(MapOptions {
        k: 9, // LUT truth tables only go to k = 8
        cuts_per_node: 8,
        mode: MapMode::Free,
    });
    match pipeline.run(&gf256_net()) {
        Err(FlowError::InvalidOptions(msg)) => assert!(msg.contains("k = 9"), "{msg}"),
        other => panic!("expected InvalidOptions, got {other:?}"),
    }
}

#[test]
fn map_k_contradicting_the_target_is_rejected() {
    // Regression for the latent mismatch the historical API allowed:
    // `MapOptions::k` configured independently of `Device::lut_inputs`
    // could silently map k=4 cones while packing and timing assumed
    // LUT6. The target is now the single source of truth — the same
    // configuration is a typed error naming both sides...
    let pipeline = Pipeline::new().with_map_options(MapOptions::new().with_k(4));
    match pipeline.run(&gf256_net()) {
        Err(FlowError::InvalidOptions(msg)) => {
            assert!(msg.contains("k = 4"), "{msg}");
            assert!(msg.contains("artix7"), "{msg}");
            assert!(msg.contains("with_target"), "{msg}");
        }
        other => panic!("expected InvalidOptions, got {other:?}"),
    }
    // ...and the supported spelling — pick a k=4 fabric — works.
    let report = Pipeline::new()
        .with_target(Target::Spartan3)
        .run_report(&gf256_net())
        .expect("retargeted pipeline runs clean");
    assert!(report.luts > 0);
}

#[test]
fn device_shape_contradicting_the_target_is_rejected() {
    // Swapping in another preset's device without retargeting is the
    // same class of silent mismatch; only same-shape recalibrations of
    // the current target's device pass validation.
    let pipeline = Pipeline::new().with_device(Target::StratixAlm.device());
    match pipeline.validate() {
        Err(FlowError::InvalidOptions(msg)) => {
            assert!(msg.contains("contradicts target artix7"), "{msg}")
        }
        other => panic!("expected InvalidOptions, got {other:?}"),
    }
    let recalibrated = Device {
        t_net_ns: 1.00,
        ..Target::Artix7.device()
    };
    Pipeline::new()
        .with_device(recalibrated)
        .validate()
        .expect("same-shape recalibration is allowed");
}

#[test]
fn designs_too_big_for_the_device_are_unplaceable() {
    let pipeline = Pipeline::new().with_max_slices(Some(3));
    match pipeline.run(&gf256_net()) {
        Err(FlowError::Unplaceable {
            slices, capacity, ..
        }) => {
            assert!(slices > capacity);
            assert_eq!(capacity, 3);
        }
        other => panic!("expected Unplaceable, got {other:?}"),
    }
}

#[test]
fn formal_verification_failures_are_typed_errors() {
    let field = Field::from_pentanomial(&TypeIiPentanomial::new(8, 2).unwrap());
    let spec = multiplier_spec(&field);
    let net = gf256_net();
    let pipeline = Pipeline::new();

    // The complete certificate passes at both netlist levels...
    pipeline
        .verify_formal(&spec, &net)
        .expect("correct netlist carries the certificate");
    let mut mapped = pipeline
        .map(&pipeline.resynth(&net).unwrap())
        .expect("mapping succeeds");
    pipeline
        .verify_formal_mapped(&spec, &mapped)
        .expect("correct mapping carries the certificate");

    // ...and a corrupted LUT surfaces as FormalMismatch naming the
    // first wrong output bit, with a usable message.
    let truth = mapped.luts()[0].truth;
    mapped.set_truth(0, !truth);
    match pipeline.verify_formal_mapped(&spec, &mapped) {
        Err(e @ FlowError::FormalMismatch { output_bit, .. }) => {
            assert!(output_bit < 8);
            let msg = e.to_string();
            assert!(msg.contains("formal verification"), "{msg}");
        }
        other => panic!("expected FormalMismatch, got {other:?}"),
    }
}

#[test]
fn lint_reaches_the_facade_and_its_error_variant_is_informative() {
    // The hash-consing builder cannot construct a structurally broken
    // netlist, so through the facade both lint levels report clean on
    // generated designs (with hygiene warnings at most)...
    let net = gf256_net();
    let gate_report = lint_netlist(&net);
    assert!(!gate_report.has_errors(), "{gate_report}");
    let pipeline = Pipeline::new();
    let mapped = pipeline.map(&pipeline.resynth(&net).unwrap()).unwrap();
    let mapped_report = lint_mapped(&mapped);
    assert!(!mapped_report.has_errors(), "{mapped_report}");
    assert_eq!(mapped_report.duplicate_gates(), 0);
    assert_eq!(mapped_report.dead_nodes(), 0);

    // ...and the typed error the pipeline raises when lint *does* find
    // errors (crate-internal paths can) formats usably.
    let e = FlowError::LintErrors {
        design: "broken".into(),
        errors: 2,
        first: "error[undriven-input]: node 3 reads input 99".into(),
    };
    let msg = e.to_string();
    assert!(msg.contains("lint"), "{msg}");
    assert!(msg.contains("undriven-input"), "{msg}");
}

#[test]
fn the_happy_path_still_returns_ok_artifacts() {
    let net = gf256_net();
    let pipeline = Pipeline::new();
    let artifacts = pipeline.run(&net).expect("clean run");
    assert_eq!(artifacts.report.luts, artifacts.mapped.num_luts());
    assert!(artifacts.report.time_ns > 0.0);
}
